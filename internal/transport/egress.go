// Asynchronous egress: per-subscriber outbound rings drained by dedicated
// writer goroutines with vectored writes.
//
// The broker's fan-out used to write to every subscriber synchronously under
// each connection's write lock, so one wedged socket head-of-line-blocked the
// whole dispatch lane and every other topic's deadline in it. An Egress
// decouples the two: dispatch becomes a non-blocking enqueue of a refcounted,
// encode-once frame buffer, and a per-connection writer goroutine drains the
// ring with net.Buffers (writev on TCP), coalescing many frames into one
// syscall.
//
// When a ring fills, the shed policy is deadline-aware: the oldest frame is
// dropped, but a topic never loses more than its loss tolerance Li in
// consecutive drops. A subscriber that would force a topic past Li is evicted
// (connection closed, counted) instead of stalling the lane — mirroring how
// the paper treats Li as the per-topic QoS floor rather than best-effort.
//
// Ownership contract: a FrameBuf starts with one reference held by its
// creator. Each Enqueue transfers one reference to the egress (callers Retain
// before enqueueing the same buffer to multiple subscribers); the egress
// releases it after the frame is flushed, shed, or dropped at close. The last
// Release returns the buffer to a sync.Pool, keeping the steady-state
// publish→dispatch→flush path at zero allocations per message.
package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// FrameBuf is a pooled, reference-counted frame body. B holds one encoded
// frame (the bytes a wire.Append*Body helper produces); encode once, Retain
// per additional consumer, and let the last Release recycle the storage.
type FrameBuf struct {
	B    []byte
	refs atomic.Int32
}

var frameBufPool = sync.Pool{New: func() any { return &FrameBuf{} }}

// frameBufRefs counts outstanding references across all live FrameBufs; leak
// tests assert it returns to its baseline once all traffic drains.
var frameBufRefs atomic.Int64

// FrameBufRefs reports the number of FrameBuf references currently held
// anywhere in the process. Test-only observability; racing traffic makes the
// instantaneous value approximate.
func FrameBufRefs() int64 { return frameBufRefs.Load() }

// GetFrameBuf returns a pooled buffer holding one reference. B has zero
// length but keeps any pooled capacity.
func GetFrameBuf() *FrameBuf {
	fb := frameBufPool.Get().(*FrameBuf)
	fb.refs.Store(1)
	frameBufRefs.Add(1)
	return fb
}

// Retain adds a reference. The caller must already hold one — retaining a
// released buffer is a use-after-free and panics.
func (b *FrameBuf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("transport: FrameBuf.Retain on released buffer")
	}
	frameBufRefs.Add(1)
}

// Release drops one reference; the last one returns the buffer to the pool.
// Oversized payload storage is abandoned to the GC so one jumbo frame does
// not pin memory in the pool, matching GetFrame/PutFrame's policy.
func (b *FrameBuf) Release() {
	frameBufRefs.Add(-1)
	switch n := b.refs.Add(-1); {
	case n < 0:
		panic("transport: FrameBuf.Release without a reference")
	case n == 0:
		if cap(b.B) > pooledPayloadCap {
			b.B = nil
		} else {
			b.B = b.B[:0]
		}
		frameBufPool.Put(b)
	}
}

// EgressMeter accumulates egress counters, typically shared by every
// subscriber ring a broker owns. All fields are atomic.
type EgressMeter struct {
	Enqueued  atomic.Uint64 // frames accepted into a ring
	Flushed   atomic.Uint64 // frames written to a socket
	Batches   atomic.Uint64 // vectored writes issued
	Shed      atomic.Uint64 // frames dropped by the Li-aware shed policy
	Evictions atomic.Uint64 // subscribers evicted for exceeding a topic's Li
	Stalls    atomic.Uint64 // writes failed by the write-stall deadline
	WriteErrs atomic.Uint64 // failed vectored writes (stalls included)
}

// EgressStats is a point-in-time copy of an EgressMeter.
type EgressStats struct {
	Enqueued  uint64
	Flushed   uint64
	Batches   uint64
	Shed      uint64
	Evictions uint64
	Stalls    uint64
	WriteErrs uint64
}

// Snapshot copies the counters.
func (m *EgressMeter) Snapshot() EgressStats {
	return EgressStats{
		Enqueued:  m.Enqueued.Load(),
		Flushed:   m.Flushed.Load(),
		Batches:   m.Batches.Load(),
		Shed:      m.Shed.Load(),
		Evictions: m.Evictions.Load(),
		Stalls:    m.Stalls.Load(),
		WriteErrs: m.WriteErrs.Load(),
	}
}

// Egress sizing defaults. A 1024-deep ring absorbs ~20ms of a 50k msg/s
// fan-out before shedding starts; 64 frames per vectored write stays well
// under common IOV_MAX (1024) while amortizing the syscall ~64×.
const (
	DefaultEgressDepth = 1024
	DefaultEgressBatch = 64
)

// EgressConfig parameterizes one subscriber ring.
type EgressConfig struct {
	// Depth is the ring capacity in frames (DefaultEgressDepth when <= 0).
	Depth int
	// Shed selects the full-ring policy: true drops oldest frames within
	// each topic's Li budget and evicts past it; false blocks the enqueuer
	// (legacy backpressure, used by benchmarks that need a lossless pipe).
	Shed bool
	// Stall bounds each flush write via Conn.SetWriteStall; zero leaves the
	// connection's existing bound untouched.
	Stall time.Duration
	// MaxBatch caps frames per vectored write (DefaultEgressBatch when <= 0).
	MaxBatch int
	// Meter receives counters; nil disables counting.
	Meter *EgressMeter
}

// EnqueueResult reports what Enqueue did with the frame.
type EnqueueResult int

const (
	// EnqueueOK: the frame is queued for flush.
	EnqueueOK EnqueueResult = iota
	// EnqueueShed: the frame was queued after shedding older frames.
	EnqueueShed
	// EnqueueClosed: the egress is closed; the frame was released.
	EnqueueClosed
	// EnqueueEvicted: this enqueue exhausted a topic's Li budget and evicted
	// the subscriber; the frame was released and the connection is closing.
	EnqueueEvicted
)

// egressItem is one queued frame plus the shed-budget inputs captured at
// enqueue time.
type egressItem struct {
	buf   *FrameBuf
	topic spec.TopicID
	li    int
}

// Egress owns one subscriber connection's outbound path: a bounded ring of
// refcounted frames and the writer goroutine that drains it.
type Egress struct {
	conn  *Conn
	meter *EgressMeter
	shed  bool

	mu        sync.Mutex
	cond      *sync.Cond
	ring      []egressItem
	head      int
	count     int
	highWater int
	consec    map[spec.TopicID]int // consecutive drops per topic since last flush
	closed    bool
	evicted   bool

	// Writer-owned scratch, reused across batches. hdrs is pre-sized to
	// 4*maxBatch so mid-batch growth can never move the header bytes that
	// vecs already aliases.
	batch []egressItem
	hdrs  []byte
	vecs  net.Buffers

	done chan struct{}
}

// NewEgress wraps conn with an outbound ring and starts its writer. The
// egress owns all writes on conn from here on; callers route every frame
// through Enqueue (control replies on a subscriber conn keep using Send,
// which serializes with the flusher on the conn's write lock).
func NewEgress(conn *Conn, cfg EgressConfig) *Egress {
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultEgressDepth
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultEgressBatch
	}
	if maxBatch > depth {
		maxBatch = depth
	}
	if cfg.Stall > 0 {
		conn.SetWriteStall(cfg.Stall)
	}
	e := &Egress{
		conn:  conn,
		meter: cfg.Meter,
		shed:  cfg.Shed,
		ring:  make([]egressItem, depth),
		batch: make([]egressItem, 0, maxBatch),
		hdrs:  make([]byte, 0, 4*maxBatch),
		vecs:  make(net.Buffers, 0, 2*maxBatch),
		done:  make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// Conn returns the wrapped connection.
func (e *Egress) Conn() *Conn { return e.conn }

// Enqueue hands one reference on buf to the egress for delivery. topic and
// li (the topic's loss tolerance) feed the shed policy. Never blocks in shed
// mode; in blocking mode it waits for ring space. Whatever the outcome, the
// caller's transferred reference is consumed.
func (e *Egress) Enqueue(buf *FrameBuf, topic spec.TopicID, li int) EnqueueResult {
	result := EnqueueOK
	e.mu.Lock()
	for {
		if e.closed {
			e.mu.Unlock()
			buf.Release()
			return EnqueueClosed
		}
		if e.count < len(e.ring) {
			slot := e.head + e.count
			if slot >= len(e.ring) {
				slot -= len(e.ring)
			}
			e.ring[slot] = egressItem{buf: buf, topic: topic, li: li}
			e.count++
			if e.count > e.highWater {
				e.highWater = e.count
			}
			e.cond.Broadcast()
			e.mu.Unlock()
			if e.meter != nil {
				e.meter.Enqueued.Add(1)
			}
			return result
		}
		if !e.shed {
			e.cond.Wait() // blocking backpressure mode
			continue
		}
		// Ring full: shed the oldest frame unless its topic already lost Li
		// consecutive frames — then the subscriber is past its QoS floor and
		// gets evicted instead of silently exceeding Li or stalling the lane.
		oldest := e.ring[e.head]
		dropped := e.consec[oldest.topic]
		if oldest.li < spec.LossUnbounded && dropped >= oldest.li {
			e.closed, e.evicted = true, true
			e.drainLocked()
			e.cond.Broadcast()
			e.mu.Unlock()
			buf.Release()
			if e.meter != nil {
				e.meter.Evictions.Add(1)
			}
			// The writer may be wedged mid-write holding the conn's write
			// lock; Close from a fresh goroutine unsticks it without
			// blocking the dispatch lane here.
			go e.conn.Close()
			return EnqueueEvicted
		}
		e.ring[e.head] = egressItem{}
		e.head++
		if e.head == len(e.ring) {
			e.head = 0
		}
		e.count--
		if e.consec == nil {
			e.consec = make(map[spec.TopicID]int)
		}
		e.consec[oldest.topic] = dropped + 1
		oldest.buf.Release()
		if e.meter != nil {
			e.meter.Shed.Add(1)
		}
		result = EnqueueShed
	}
}

// drainLocked releases every queued frame. Callers hold e.mu.
func (e *Egress) drainLocked() {
	for e.count > 0 {
		it := e.ring[e.head]
		e.ring[e.head] = egressItem{}
		e.head++
		if e.head == len(e.ring) {
			e.head = 0
		}
		e.count--
		it.buf.Release()
	}
}

// Close stops the egress: queued frames are released (the connection is
// about to close anyway) and the writer exits once any in-flight write
// returns. Idempotent. Close does not close the connection — owners close
// the conn themselves, then Wait for the writer.
func (e *Egress) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.drainLocked()
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Wait blocks until the writer goroutine has exited.
func (e *Egress) Wait() { <-e.done }

// Evicted reports whether the shed policy evicted this subscriber.
func (e *Egress) Evicted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evicted
}

// Depth returns the current queue depth in frames.
func (e *Egress) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// HighWater returns the deepest the ring has ever been.
func (e *Egress) HighWater() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.highWater
}

// run is the writer: drain up to maxBatch frames, flush them in one vectored
// write, release, repeat until closed and empty.
func (e *Egress) run() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for e.count == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.count == 0 {
			evicted := e.evicted
			e.mu.Unlock()
			if evicted {
				e.conn.Close()
			}
			return
		}
		n := e.count
		if n > cap(e.batch) {
			n = cap(e.batch)
		}
		e.batch = e.batch[:0]
		for i := 0; i < n; i++ {
			e.batch = append(e.batch, e.ring[e.head])
			e.ring[e.head] = egressItem{}
			e.head++
			if e.head == len(e.ring) {
				e.head = 0
			}
		}
		e.count -= n
		e.cond.Broadcast() // wake enqueuers blocked on a full ring
		e.mu.Unlock()

		e.hdrs = e.hdrs[:0]
		e.vecs = e.vecs[:0]
		total := 0
		for _, it := range e.batch {
			off := len(e.hdrs)
			e.hdrs = append(e.hdrs, 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(e.hdrs[off:], uint32(len(it.buf.B)))
			e.vecs = append(e.vecs, e.hdrs[off:off+4], it.buf.B)
			total += 4 + len(it.buf.B)
		}
		err := e.conn.WriteBuffers(e.vecs, n, total)
		if err == nil {
			e.mu.Lock()
			if e.consec != nil {
				for _, it := range e.batch {
					delete(e.consec, it.topic)
				}
			}
			e.mu.Unlock()
			for i := range e.batch {
				e.batch[i].buf.Release()
				e.batch[i] = egressItem{}
			}
			if e.meter != nil {
				e.meter.Flushed.Add(uint64(n))
				e.meter.Batches.Add(1)
			}
			continue
		}
		for i := range e.batch {
			e.batch[i].buf.Release()
			e.batch[i] = egressItem{}
		}
		e.mu.Lock()
		wasClosed := e.closed
		e.closed = true
		e.drainLocked()
		e.cond.Broadcast()
		e.mu.Unlock()
		if !wasClosed && e.meter != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				e.meter.Stalls.Add(1)
			}
			e.meter.WriteErrs.Add(1)
		}
		e.conn.Close()
		return
	}
}
