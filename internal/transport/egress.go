// Asynchronous egress: per-subscriber outbound rings drained by dedicated
// writer goroutines with vectored writes.
//
// The broker's fan-out used to write to every subscriber synchronously under
// each connection's write lock, so one wedged socket head-of-line-blocked the
// whole dispatch lane and every other topic's deadline in it. An Egress
// decouples the two: dispatch becomes a non-blocking enqueue of a refcounted,
// encode-once frame buffer, and a per-connection writer goroutine drains the
// ring with net.Buffers (writev on TCP), coalescing many frames into one
// syscall.
//
// When a ring fills, the shed policy is deadline-aware: the oldest frame is
// dropped, but a topic never loses more than its loss tolerance Li in
// consecutive drops. A subscriber that would force a topic past Li is evicted
// (connection closed, counted) instead of stalling the lane — mirroring how
// the paper treats Li as the per-topic QoS floor rather than best-effort.
//
// Ownership contract: a FrameBuf starts with one reference held by its
// creator. Each Enqueue transfers one reference to the egress (callers Retain
// before enqueueing the same buffer to multiple subscribers); the egress
// releases it after the frame is flushed, shed, or dropped at close. The last
// Release returns the buffer to a sync.Pool, keeping the steady-state
// publish→dispatch→flush path at zero allocations per message.
package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
	"repro/internal/transport/submit"
)

// FrameBuf is a pooled, reference-counted frame body. B holds one encoded
// frame (the bytes a wire.Append*Body helper produces); encode once, Retain
// per additional consumer, and let the last Release recycle the storage.
type FrameBuf struct {
	B    []byte
	refs atomic.Int32
}

// Fresh pool entries carry enough capacity for a typical dispatch body, so
// a pool miss costs one allocation instead of a second one when the encoder
// grows B from nil.
var frameBufPool = sync.Pool{New: func() any { return &FrameBuf{B: make([]byte, 0, 256)} }}

// frameBufRefs counts FrameBufs currently out of the pool: +1 at GetFrameBuf,
// -1 when the final Release recycles the buffer. Counting buffers instead of
// references keeps Retain and the non-final Releases — the fan-out hot path —
// off this shared cache line, while leak tests keep the property they need:
// once all traffic drains, the count returns to its baseline.
var frameBufRefs atomic.Int64

// FrameBufRefs reports the number of FrameBufs currently checked out of the
// pool anywhere in the process. Test-only observability; racing traffic makes
// the instantaneous value approximate.
func FrameBufRefs() int64 { return frameBufRefs.Load() }

// GetFrameBuf returns a pooled buffer holding one reference. B has zero
// length but keeps any pooled capacity.
func GetFrameBuf() *FrameBuf {
	fb := frameBufPool.Get().(*FrameBuf)
	fb.refs.Store(1)
	frameBufRefs.Add(1)
	return fb
}

// Retain adds a reference. The caller must already hold one — retaining a
// released buffer is a use-after-free and panics.
func (b *FrameBuf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("transport: FrameBuf.Retain on released buffer")
	}
}

// RetainN adds n references at once — one atomic add instead of n, which
// matters on the fan-out path where a dispatch retains once per subscriber.
func (b *FrameBuf) RetainN(n int) {
	if n <= 0 {
		return
	}
	if b.refs.Add(int32(n)) <= int32(n) {
		panic("transport: FrameBuf.RetainN on released buffer")
	}
}

// Release drops one reference; the last one returns the buffer to the pool.
// Oversized payload storage is abandoned to the GC so one jumbo frame does
// not pin memory in the pool, matching GetFrame/PutFrame's policy.
func (b *FrameBuf) Release() {
	switch n := b.refs.Add(-1); {
	case n < 0:
		panic("transport: FrameBuf.Release without a reference")
	case n == 0:
		frameBufRefs.Add(-1)
		if cap(b.B) > pooledPayloadCap {
			b.B = nil
		} else {
			b.B = b.B[:0]
		}
		frameBufPool.Put(b)
	}
}

// EgressMeter accumulates egress counters, typically shared by every
// subscriber ring a broker owns. All fields are atomic.
type EgressMeter struct {
	// Producer-side counters, bumped on the enqueue path.
	Enqueued  atomic.Uint64 // frames accepted into a ring
	Shed      atomic.Uint64 // frames dropped by the Li-aware shed policy
	Evictions atomic.Uint64 // subscribers evicted for exceeding a topic's Li

	// Padding keeps the flusher-side counters below off the cache line the
	// enqueue path hammers; with a shared meter across many egresses, the
	// two sides otherwise false-share on every frame.
	_ [40]byte

	// Flusher-side counters, bumped by the writer draining the ring.
	Flushed   atomic.Uint64 // frames written to a socket
	Batches   atomic.Uint64 // per-egress flush batches settled
	Stalls    atomic.Uint64 // writes failed by the write-stall deadline
	WriteErrs atomic.Uint64 // failed vectored writes (stalls included)
	// WriteSyscalls counts write syscalls spent on the sequential path
	// (one per vectored write or straggler resume). Kernel-batched sweeps
	// cross the kernel once per sweep, not per egress, so their enter
	// calls are counted pool-wide (FlusherPool.Stats) instead; the sum of
	// the two is the denominator-free syscall cost the opoints rig turns
	// into syscalls_per_msg.
	WriteSyscalls atomic.Uint64
}

// EgressStats is a point-in-time copy of an EgressMeter, plus — when
// filled in by a pool owner such as the broker — the kernel-submission
// counters of the FlusherPool draining these rings.
type EgressStats struct {
	Enqueued  uint64
	Flushed   uint64
	Batches   uint64
	Shed      uint64
	Evictions uint64
	Stalls    uint64
	WriteErrs uint64
	// WriteSyscalls totals kernel crossings spent writing frames: the
	// meter's sequential-path writes plus (merged by the pool owner) the
	// pool's io_uring_enter calls.
	WriteSyscalls uint64
	// SubmittedBatches and SweepConns mirror FlusherPool.Stats: sweeps
	// submitted via the kernel backend and the connection writes they
	// carried. Zero when the portable path is in use.
	SubmittedBatches uint64
	SweepConns       uint64
	// KernelSubmit reports whether the pool's io_uring backend is active.
	KernelSubmit bool
}

// Snapshot copies the counters.
func (m *EgressMeter) Snapshot() EgressStats {
	return EgressStats{
		Enqueued:      m.Enqueued.Load(),
		Flushed:       m.Flushed.Load(),
		Batches:       m.Batches.Load(),
		Shed:          m.Shed.Load(),
		Evictions:     m.Evictions.Load(),
		Stalls:        m.Stalls.Load(),
		WriteErrs:     m.WriteErrs.Load(),
		WriteSyscalls: m.WriteSyscalls.Load(),
	}
}

// Egress sizing defaults. A 1024-deep ring absorbs ~20ms of a 50k msg/s
// fan-out before shedding starts; 64 frames per vectored write amortizes
// the syscall ~64× while staying far inside MaxEgressBatch.
const (
	DefaultEgressDepth = 1024
	DefaultEgressBatch = 64
)

// MaxEgressBatch is the hard ceiling on frames per collected flush batch.
// Every frame contributes two iovecs (length prefix + body), and both the
// kernel's writev and the submit layer's per-connection SQE are bound by
// submit.IOVMax vectors, so batches are clamped to IOVMax/2 frames: any
// batch collectLocked produces is always expressible as one vectored
// write and one submission-queue entry, never silently split.
const MaxEgressBatch = submit.IOVMax / 2

// EgressConfig parameterizes one subscriber ring.
type EgressConfig struct {
	// Depth is the ring capacity in frames (DefaultEgressDepth when <= 0).
	Depth int
	// Shed selects the full-ring policy: true drops oldest frames within
	// each topic's Li budget and evicts past it; false blocks the enqueuer
	// (legacy backpressure, used by benchmarks that need a lossless pipe).
	Shed bool
	// Stall bounds each flush write via Conn.SetWriteStall; zero leaves the
	// connection's existing bound untouched.
	Stall time.Duration
	// MaxBatch caps frames per vectored write (DefaultEgressBatch when <= 0).
	MaxBatch int
	// Meter receives counters; nil disables counting.
	Meter *EgressMeter
	// Pool, when non-nil, drains this ring with the pool's shared flushers
	// instead of a dedicated writer goroutine (see FlusherPool). Nil keeps
	// the per-subscriber writer.
	Pool *FlusherPool
}

// EnqueueResult reports what Enqueue did with the frame.
type EnqueueResult int

const (
	// EnqueueOK: the frame is queued for flush.
	EnqueueOK EnqueueResult = iota
	// EnqueueShed: the frame was queued after shedding older frames.
	EnqueueShed
	// EnqueueClosed: the egress is closed; the frame was released.
	EnqueueClosed
	// EnqueueEvicted: this enqueue exhausted a topic's Li budget and evicted
	// the subscriber; the frame was released and the connection is closing.
	EnqueueEvicted
)

// egressItem is one queued frame plus the shed-budget inputs captured at
// enqueue time.
type egressItem struct {
	buf   *FrameBuf
	topic spec.TopicID
	li    int
}

// Egress owns one subscriber connection's outbound path: a bounded ring of
// refcounted frames and the writer goroutine that drains it.
type Egress struct {
	conn  *Conn
	meter *EgressMeter
	shed  bool

	mu        sync.Mutex
	cond      *sync.Cond
	ring      []egressItem
	head      int
	count     int
	highWater int
	// pendEnq/pendShed batch enqueue-path meter counts under mu; the next
	// collect (or terminal drain) publishes them in one atomic add each
	// instead of one per frame. The shared meter lags by at most one flush
	// cycle, which its readers (stats scrapes, tests after Wait) tolerate.
	pendEnq  uint64
	pendShed uint64
	consec   map[spec.TopicID]int // consecutive drops per topic since last flush
	closed   bool
	evicted  bool

	// Pooled mode (fl non-nil): state is the idle/queued handoff word of
	// the flusher protocol, guarded by mu like the ring it describes.
	// lingered marks an egress whose last flusher visit found it empty but
	// kept it queued for one more sweep; the second empty visit idles it.
	fl       *flusher
	state    int32
	lingered bool

	// sfd is a private dup of the connection's socket fd for kernel-batched
	// submission, or -1 when the conn exposes none (Mem pipes, fault
	// wrappers) or the pool's kernel backend is off. Owning a dup — closed
	// only in finalize, when no flusher can hold this egress — means a
	// racing Conn.Close can never recycle the fd number into some other
	// socket while a sweep has an SQE in flight on it.
	sfd int

	// Writer-owned scratch, reused across batches. hdrs is pre-sized to
	// 4*maxBatch so mid-batch growth can never move the header bytes that
	// vecs already aliases. batchConsec snapshots (under mu, in
	// collectLocked) whether the shed ledger had entries, so the common
	// no-shed flush skips relocking to settle it.
	batch       []egressItem
	hdrs        []byte
	vecs        net.Buffers
	batchConsec bool

	done     chan struct{}
	doneOnce sync.Once
}

// NewEgress wraps conn with an outbound ring and arranges its draining: a
// dedicated writer goroutine by default, or cfg.Pool's shared flushers when
// a pool is given. The egress owns all writes on conn from here on; callers
// route every frame through Enqueue (control replies on a subscriber conn
// keep using Send, which serializes with the flusher on the conn's write
// lock).
func NewEgress(conn *Conn, cfg EgressConfig) *Egress {
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultEgressDepth
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultEgressBatch
	}
	if maxBatch > MaxEgressBatch {
		maxBatch = MaxEgressBatch
	}
	if maxBatch > depth {
		maxBatch = depth
	}
	if cfg.Stall > 0 {
		conn.SetWriteStall(cfg.Stall)
	}
	e := &Egress{
		conn:  conn,
		meter: cfg.Meter,
		shed:  cfg.Shed,
		ring:  make([]egressItem, depth),
		batch: make([]egressItem, 0, maxBatch),
		hdrs:  make([]byte, 0, 4*maxBatch),
		vecs:  make(net.Buffers, 0, 2*maxBatch),
		sfd:   -1,
		done:  make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	if cfg.Pool != nil {
		e.fl = cfg.Pool.assign()
		if cfg.Pool.kernelOK.Load() {
			e.sfd = submit.DupConnFD(conn.nc)
		}
	} else {
		go e.run()
	}
	return e
}

// Conn returns the wrapped connection.
func (e *Egress) Conn() *Conn { return e.conn }

// Enqueue hands one reference on buf to the egress for delivery. topic and
// li (the topic's loss tolerance) feed the shed policy. Never blocks in shed
// mode; in blocking mode it waits for ring space. Whatever the outcome, the
// caller's transferred reference is consumed.
func (e *Egress) Enqueue(buf *FrameBuf, topic spec.TopicID, li int) EnqueueResult {
	result := EnqueueOK
	e.mu.Lock()
	for {
		if e.closed {
			e.mu.Unlock()
			buf.Release()
			return EnqueueClosed
		}
		if e.count < len(e.ring) {
			slot := e.head + e.count
			if slot >= len(e.ring) {
				slot -= len(e.ring)
			}
			e.ring[slot] = egressItem{buf: buf, topic: topic, li: li}
			e.count++
			if e.count > e.highWater {
				e.highWater = e.count
			}
			submit := false
			if e.fl != nil {
				// Pooled mode: hand the egress to its flusher only on the
				// idle→queued edge; while queued, the flusher re-checks the
				// ring before going idle, so this enqueue is already covered.
				if e.state == egIdle {
					e.state = egQueued
					submit = true
				}
			} else {
				e.cond.Broadcast() // wake the dedicated writer
			}
			e.pendEnq++
			e.mu.Unlock()
			if submit {
				e.fl.submit(e)
			}
			return result
		}
		// Ring full. In pooled mode that can mean the flusher is wedged in
		// a write on a sibling connection; age the in-flight write and
		// spawn a replacement flusher past the escalation bound.
		if e.fl != nil {
			e.fl.maybeEscalate(e)
		}
		if !e.shed {
			e.cond.Wait() // blocking backpressure mode
			continue
		}
		// Ring full: shed the oldest frame unless its topic already lost Li
		// consecutive frames — then the subscriber is past its QoS floor and
		// gets evicted instead of silently exceeding Li or stalling the lane.
		oldest := e.ring[e.head]
		dropped := e.consec[oldest.topic]
		if oldest.li < spec.LossUnbounded && dropped >= oldest.li {
			e.closed, e.evicted = true, true
			e.drainLocked()
			e.cond.Broadcast()
			idle := e.fl != nil && e.state == egIdle
			e.mu.Unlock()
			buf.Release()
			if e.meter != nil {
				e.meter.Evictions.Add(1)
			}
			// The writer may be wedged mid-write holding the conn's write
			// lock; Close from a fresh goroutine unsticks it without
			// blocking the dispatch lane here.
			go e.conn.Close()
			if idle {
				// Pooled and not queued: no flusher will visit, so the
				// terminal bookkeeping happens here.
				e.finalize()
			}
			return EnqueueEvicted
		}
		e.ring[e.head] = egressItem{}
		e.head++
		if e.head == len(e.ring) {
			e.head = 0
		}
		e.count--
		if e.consec == nil {
			e.consec = make(map[spec.TopicID]int)
		}
		e.consec[oldest.topic] = dropped + 1
		e.pendShed++
		oldest.buf.Release()
		result = EnqueueShed
	}
}

// flushMeterLocked publishes the enqueue counts batched under mu to the
// shared meter. Callers hold e.mu.
func (e *Egress) flushMeterLocked() {
	if e.meter == nil {
		e.pendEnq, e.pendShed = 0, 0
		return
	}
	if e.pendEnq != 0 {
		e.meter.Enqueued.Add(e.pendEnq)
		e.pendEnq = 0
	}
	if e.pendShed != 0 {
		e.meter.Shed.Add(e.pendShed)
		e.pendShed = 0
	}
}

// drainLocked releases every queued frame and settles the batched meter
// counts — every terminal path drains, so nothing stays unpublished.
// Callers hold e.mu.
func (e *Egress) drainLocked() {
	e.flushMeterLocked()
	for e.count > 0 {
		it := e.ring[e.head]
		e.ring[e.head] = egressItem{}
		e.head++
		if e.head == len(e.ring) {
			e.head = 0
		}
		e.count--
		it.buf.Release()
	}
}

// Close stops the egress: queued frames are released (the connection is
// about to close anyway) and the writer exits once any in-flight write
// returns. Idempotent. Close does not close the connection — owners close
// the conn themselves, then Wait for the writer.
func (e *Egress) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.drainLocked()
	e.cond.Broadcast()
	idle := e.fl != nil && e.state == egIdle
	e.mu.Unlock()
	if idle {
		// Pooled and not queued anywhere: the flushers will never visit
		// this egress again, so it reaches its terminal state here. When
		// queued, the owning flusher finds the drained ring and finalizes.
		e.finalize()
	}
}

// Wait blocks until the egress has fully stopped: the dedicated writer
// exited, or — pooled — its flusher (or Close) finalized it.
func (e *Egress) Wait() { <-e.done }

// finalize performs the one-time terminal transition of a pooled egress:
// an evicted connection is closed (the dedicated-writer path does the same
// on exit), the submission fd dup is returned to the kernel, and waiters
// are released. finalize runs only when no flusher holds the egress, so
// no sweep can have an SQE in flight on sfd here.
func (e *Egress) finalize() {
	e.doneOnce.Do(func() {
		if e.Evicted() {
			e.conn.Close()
		}
		submit.CloseFD(e.sfd)
		close(e.done)
	})
}

// Evicted reports whether the shed policy evicted this subscriber.
func (e *Egress) Evicted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evicted
}

// Depth returns the current queue depth in frames.
func (e *Egress) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// HighWater returns the deepest the ring has ever been.
func (e *Egress) HighWater() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.highWater
}

// run is the dedicated writer (pool-less mode): drain up to maxBatch frames,
// flush them in one vectored write, release, repeat until closed and empty.
func (e *Egress) run() {
	defer e.finalize()
	for {
		e.mu.Lock()
		for e.count == 0 && !e.closed {
			e.cond.Wait()
		}
		n := e.collectLocked()
		e.mu.Unlock()
		if n == 0 {
			return // closed and drained; finalize closes an evicted conn
		}
		if err := e.flushBatch(n); err != nil {
			return
		}
	}
}

// collectLocked moves up to maxBatch frames from the ring into the batch
// scratch and wakes enqueuers blocked on a full ring. Caller holds e.mu;
// the batch belongs to that caller until its flushBatch returns (the
// idle/queued handoff keeps pooled collectors from overlapping).
func (e *Egress) collectLocked() int {
	n := e.count
	if n == 0 {
		return 0
	}
	if n > cap(e.batch) {
		n = cap(e.batch)
	}
	// Bulk-move in at most two contiguous chunks: the copy/clear pair beats
	// a per-item loop while the producers contend on this mutex.
	e.batch = e.batch[:n]
	first := n
	if r := len(e.ring) - e.head; first > r {
		first = r
	}
	copy(e.batch[:first], e.ring[e.head:e.head+first])
	clear(e.ring[e.head : e.head+first])
	if rest := n - first; rest > 0 {
		copy(e.batch[first:], e.ring[:rest])
		clear(e.ring[:rest])
	}
	e.head += n
	if e.head >= len(e.ring) {
		e.head -= len(e.ring)
	}
	e.count -= n
	e.flushMeterLocked()
	// Snapshot whether the shed ledger has entries: flushBatch (outside the
	// mutex, same goroutine) skips its settle-locking round-trip when not.
	e.batchConsec = len(e.consec) != 0
	e.cond.Broadcast() // wake enqueuers blocked on a full ring
	return n
}

// prepareBatch assembles the collected batch's wire image into the hdrs
// and vecs scratch — two iovecs per frame, length prefix then body — and
// returns the total byte length. The scratch (and the FrameBufs it
// aliases) stays valid until settleBatch or failBatch consumes the batch.
func (e *Egress) prepareBatch() int {
	e.hdrs = e.hdrs[:0]
	e.vecs = e.vecs[:0]
	total := 0
	for _, it := range e.batch {
		off := len(e.hdrs)
		e.hdrs = append(e.hdrs, 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(e.hdrs[off:], uint32(len(it.buf.B)))
		e.vecs = append(e.vecs, e.hdrs[off:off+4], it.buf.B)
		total += 4 + len(it.buf.B)
	}
	return total
}

// settleBatch completes a fully written batch: the shed ledger forgets the
// flushed topics, the frame references the ring held are released, and the
// flush counters advance. Only the goroutine that collected the batch may
// settle it — this is the completion-driven half of the refcount custody
// contract (references move ring→batch at collect, and leave the egress
// only here or in failBatch).
func (e *Egress) settleBatch(n int) {
	if e.batchConsec {
		e.mu.Lock()
		for _, it := range e.batch {
			delete(e.consec, it.topic)
		}
		e.mu.Unlock()
	}
	for i := range e.batch {
		e.batch[i].buf.Release()
		e.batch[i] = egressItem{}
	}
	if e.meter != nil {
		e.meter.Flushed.Add(uint64(n))
		e.meter.Batches.Add(1)
	}
}

// failBatch handles a write failure: batch and ring references are
// released, the egress closes and drains, the failure is counted, and the
// connection is closed. The caller must stop draining afterwards.
func (e *Egress) failBatch(err error) {
	for i := range e.batch {
		e.batch[i].buf.Release()
		e.batch[i] = egressItem{}
	}
	e.mu.Lock()
	wasClosed := e.closed
	e.closed = true
	e.drainLocked()
	e.cond.Broadcast()
	e.mu.Unlock()
	if !wasClosed && e.meter != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			e.meter.Stalls.Add(1)
		}
		e.meter.WriteErrs.Add(1)
	}
	e.conn.Close()
}

// flushBatch writes the collected batch in one vectored write and settles
// its accounting — the sequential path, used by dedicated writers, by
// pool flushers without a kernel backend, and for connections the kernel
// backend cannot address. A write error closes and drains the egress,
// counts the failure, and closes the connection; the caller must stop
// draining.
func (e *Egress) flushBatch(n int) error {
	total := e.prepareBatch()
	err := e.conn.WriteBuffers(e.vecs, n, total)
	if e.meter != nil {
		e.meter.WriteSyscalls.Add(1)
	}
	if err == nil {
		e.settleBatch(n)
		return nil
	}
	e.failBatch(err)
	return err
}
