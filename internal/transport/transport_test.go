package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// pair returns two framed conns connected to each other over the given
// network, plus a cleanup.
func pair(t *testing.T, n Network) (*Conn, *Conn) {
	t.Helper()
	ln, err := n.Listen(listenAddr(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	type acceptResult struct {
		nc  net.Conn
		err error
	}
	ch := make(chan acceptResult, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- acceptResult{nc, err}
	}()
	client, err := n.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	a, b := NewConn(client), NewConn(res.nc)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func listenAddr(n Network) string {
	if _, ok := n.(*TCP); ok {
		return "127.0.0.1:0"
	}
	return "test-broker"
}

func networks(t *testing.T, fn func(t *testing.T, n Network)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("tcp", func(t *testing.T) { fn(t, &TCP{DialTimeout: 2 * time.Second}) })
}

func TestSendRecvRoundTrip(t *testing.T) {
	networks(t, func(t *testing.T, n Network) {
		a, b := pair(t, n)
		want := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
			Topic: 3, Seq: 14, Created: 15 * time.Microsecond, Payload: []byte("9265358979"),
		}}
		errc := make(chan error, 1)
		go func() { errc <- a.Send(want) }()
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Msg.Seq != want.Msg.Seq || string(got.Msg.Payload) != "9265358979" {
			t.Errorf("got %+v", got)
		}
	})
}

func TestManyFramesInOrder(t *testing.T) {
	networks(t, func(t *testing.T, n Network) {
		a, b := pair(t, n)
		const count = 500
		errc := make(chan error, 1)
		go func() {
			for i := uint64(0); i < count; i++ {
				if err := a.Send(&wire.Frame{Type: wire.TypePoll, Nonce: i}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
		for i := uint64(0); i < count; i++ {
			f, err := b.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if f.Nonce != i {
				t.Fatalf("frame %d has nonce %d", i, f.Nonce)
			}
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	})
}

func TestConcurrentWriters(t *testing.T) {
	networks(t, func(t *testing.T, n Network) {
		a, b := pair(t, n)
		const writers, perWriter = 8, 50
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					f := &wire.Frame{Type: wire.TypePoll, Nonce: uint64(w*perWriter + i)}
					if err := a.Send(f); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		seen := make(map[uint64]bool)
		for i := 0; i < writers*perWriter; i++ {
			f, err := b.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if seen[f.Nonce] {
				t.Fatalf("duplicate nonce %d: frame interleaving corrupted", f.Nonce)
			}
			seen[f.Nonce] = true
		}
		wg.Wait()
	})
}

func TestRecvAfterCloseErrors(t *testing.T) {
	networks(t, func(t *testing.T, n Network) {
		a, b := pair(t, n)
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err == nil {
			t.Error("Recv after peer close succeeded")
		}
	})
}

func TestReadDeadline(t *testing.T) {
	// net.Pipe supports deadlines too, but TCP is the realistic case.
	a, b := pair(t, &TCP{DialTimeout: time.Second})
	_ = a
	if err := b.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := b.Recv()
	if err == nil {
		t.Fatal("Recv returned without data before deadline")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline ignored")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	ln, err := (&TCP{}).Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer nc.Close()
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], MaxFrameSize+1)
		_, err = nc.Write(hdr[:])
		done <- err
	}()
	nc, err := (&TCP{DialTimeout: time.Second}).Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(nc)
	defer c.Close()
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := m.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("err = %v, want ErrAddrInUse", err)
	}
}

func TestMemDialUnknownAddr(t *testing.T) {
	if _, err := NewMem().Dial("nobody"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("err = %v, want ErrConnRefused", err)
	}
}

func TestMemListenerCloseUnblocksAcceptAndFreesAddr(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acceptErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Accept err = %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	// Address is reusable and dialing the dead listener refuses.
	if _, err := m.Dial("a"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("Dial closed = %v, want ErrConnRefused", err)
	}
	ln2, err := m.Listen("a")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	ln2.Close()
	// Double close is fine.
	if err := ln.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemIsolation(t *testing.T) {
	m1, m2 := NewMem(), NewMem()
	ln, err := m1.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := m2.Dial("x"); !errors.Is(err, ErrConnRefused) {
		t.Error("networks not isolated")
	}
}

func TestMemAddr(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("broker-1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().Network() != "mem" || ln.Addr().String() != "broker-1" {
		t.Errorf("addr = %v/%v", ln.Addr().Network(), ln.Addr().String())
	}
}

func BenchmarkSendRecvTCP(b *testing.B) {
	ln, err := (&TCP{}).Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	ready := make(chan *Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			ready <- nil
			return
		}
		ready <- NewConn(nc)
	}()
	nc, err := (&TCP{DialTimeout: time.Second}).Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	client := NewConn(nc)
	defer client.Close()
	server := <-ready
	if server == nil {
		b.Fatal("accept failed")
	}
	defer server.Close()

	f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Payload: make([]byte, 16)}}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			if _, err := server.Recv(); err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Msg.Seq = uint64(i)
		if err := client.Send(f); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func TestConnMeter(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	var meter Meter
	ca.SetMeter(&meter)
	cb.SetMeter(&meter)

	f := &wire.Frame{Type: wire.TypePoll, Nonce: 42}
	errc := make(chan error, 1)
	go func() { errc <- ca.Send(f) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Nonce != 42 {
		t.Fatalf("nonce = %d", got.Nonce)
	}
	if meter.FramesSent.Load() != 1 || meter.FramesRecv.Load() != 1 {
		t.Errorf("frames sent/recv = %d/%d, want 1/1",
			meter.FramesSent.Load(), meter.FramesRecv.Load())
	}
	sent, recv := meter.BytesSent.Load(), meter.BytesRecv.Load()
	if sent == 0 || sent != recv {
		t.Errorf("bytes sent/recv = %d/%d, want equal and non-zero", sent, recv)
	}
}
