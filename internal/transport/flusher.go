// Shared egress flushers: a small pool of writer goroutines sweeping many
// subscriber rings per wakeup.
//
// PR 5's egress gave every subscriber its own writer goroutine. That keeps
// sockets isolated, but at high fan-out the cost moved into the scheduler:
// N hot subscribers mean N cond.Broadcast wakeups and N runnable goroutines
// per dispatched message. A FlusherPool inverts the ratio: egresses are
// assigned round-robin to a fixed set of flushers, an egress is handed to
// its flusher only on an idle→queued edge (one atomic-free state check per
// enqueue, under the ring mutex the enqueue already holds), and each
// flusher drains every ready ring per wakeup — so N hot subscribers cost
// O(flushers) wakeups instead of O(N).
//
// Ownership protocol (all transitions under the egress's own mutex):
//
//	state == egIdle   → no flusher holds the egress; the next enqueue
//	                    flips it to egQueued and submits it exactly once.
//	state == egQueued → the egress sits in its flusher's notify ring (or
//	                    is being processed); further enqueues do nothing.
//
// The flusher returns an egress to egIdle only after finding its ring
// empty under the mutex, so an enqueue racing that transition either lands
// before the check (the flusher sees it and keeps draining) or after the
// store (its own idle→queued edge resubmits). No missed flushes, at most
// one processor per egress at any time — which is also what keeps the
// per-connection frame order intact.
//
// Wedged-socket escalation: a flusher stuck in a write on one wedged
// connection would head-of-line-block its other rings — exactly the
// coupling PR 5 removed. Enqueues that find their ring full while their
// flusher's in-flight write is older than EscalateAfter bump the flusher's
// generation and spawn a replacement goroutine that takes over the notify
// ring. The deposed goroutine keeps sole ownership of the egress it is
// stuck on (it became that connection's de-facto dedicated writer), and
// exits once that egress drains or dies.
package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/queue"
	"repro/internal/transport/submit"
)

// Pooled-egress defaults.
const (
	// DefaultFlushers is the pool size when FlusherPoolConfig.Flushers <= 0:
	// enough parallelism to keep several NICs busy, few enough that wakeup
	// coalescing still wins at high fan-out.
	DefaultFlushers = 4
	// DefaultEscalateAfter is the in-flight write age past which a full-ring
	// enqueue escalates its flusher. Two orders above a healthy writev,
	// three under the write-stall bounds deployments actually set.
	DefaultEscalateAfter = 2 * time.Millisecond
	// DefaultNotifyDepth sizes each flusher's notify ring. An egress is
	// queued at most once, so this bounds the egresses per flusher before
	// submit briefly spins.
	DefaultNotifyDepth = 4096
	// flusherSpins is the busy-poll probe budget before a flusher parks.
	flusherSpins = 4096
	// sweepRingEntries is each flusher's io_uring SQ depth, and maxSweepConns
	// is how many ready egresses one sweep gathers before submitting. Equal,
	// so a full sweep fits in one submission chunk; a sweep costs one
	// io_uring_enter regardless of how many connections it carries.
	sweepRingEntries = 128
	maxSweepConns    = 128
)

// Egress pooled-mode states, guarded by Egress.mu.
const (
	egIdle int32 = iota
	egQueued
)

// FlusherPoolConfig parameterizes a FlusherPool.
type FlusherPoolConfig struct {
	// Flushers is the number of writer goroutines (DefaultFlushers when <= 0).
	Flushers int
	// BusyPoll keeps idle flushers spinning briefly before parking,
	// trading CPU for wakeup latency (-busy-poll).
	BusyPoll bool
	// EscalateAfter is the in-flight write age that triggers a replacement
	// flusher (DefaultEscalateAfter when <= 0).
	EscalateAfter time.Duration
	// NotifyDepth sizes each flusher's notify ring (DefaultNotifyDepth
	// when <= 0).
	NotifyDepth int
	// KernelSubmit turns on the kernel-batched submission backend
	// (internal/transport/submit): each flusher sweeps every ready ring's
	// vectored write into one io_uring submission instead of one write
	// syscall per connection. The pool probes the kernel once at
	// construction — an unsupported kernel, a seccomp refusal, or
	// FRAME_NO_URING in the environment silently keeps the portable
	// sequential path. Only fd-backed connections (real sockets) ride the
	// kernel path; Mem pipes and wrapped conns stay sequential either way.
	KernelSubmit bool
	// PinCPUs pins flusher i — and any escalation replacement that takes
	// over its notify ring — to CPU PinCPUs[i mod len(PinCPUs)]
	// (LockOSThread + sched_setaffinity; no-op off Linux). Empty means no
	// pinning.
	PinCPUs []int
}

// FlusherPool drains the rings of every Egress created with Pool set to it.
type FlusherPool struct {
	flushers      []*flusher
	next          atomic.Uint64
	closed        atomic.Bool
	wg            sync.WaitGroup
	busyPoll      bool
	escalateAfter time.Duration
	escalations   atomic.Uint64

	// kernelOK is whether the io_uring backend is available and enabled.
	// Set once at construction after a live probe; any later ring-level
	// failure clears it and the pool degrades to the sequential path.
	kernelOK atomic.Bool
	pin      []int
	// Kernel-submission counters (see PoolStats).
	submits       atomic.Uint64
	enterSyscalls atomic.Uint64
	sweepConns    atomic.Uint64
}

// PoolStats is a point-in-time copy of the pool's kernel-submission
// counters.
type PoolStats struct {
	// Sweeps counts batched submissions: each covered every ready ring a
	// flusher gathered in one pass.
	Sweeps uint64
	// Syscalls counts the io_uring_enter calls those sweeps spent —
	// normally one per sweep (the whole point), more only when a sweep
	// overflows the SQ or is interrupted.
	Syscalls uint64
	// SweepConns counts the connection writes the sweeps carried; divide
	// by Sweeps for the mean batching factor.
	SweepConns uint64
	// Kernel reports whether the io_uring backend is currently active.
	Kernel bool
}

// Stats snapshots the kernel-submission counters.
func (p *FlusherPool) Stats() PoolStats {
	return PoolStats{
		Sweeps:     p.submits.Load(),
		Syscalls:   p.enterSyscalls.Load(),
		SweepConns: p.sweepConns.Load(),
		Kernel:     p.kernelOK.Load(),
	}
}

// NewFlusherPool starts cfg.Flushers writer goroutines.
func NewFlusherPool(cfg FlusherPoolConfig) *FlusherPool {
	// Deliberately not capped at GOMAXPROCS: extra flushers on a small box
	// cost context switches, but they are also the only thing standing
	// between a wedged connection and its ring-mates during the window
	// before escalation fires — a pool of one couples every subscriber to
	// the first stuck socket.
	n := cfg.Flushers
	if n <= 0 {
		n = DefaultFlushers
	}
	after := cfg.EscalateAfter
	if after <= 0 {
		after = DefaultEscalateAfter
	}
	depth := cfg.NotifyDepth
	if depth <= 0 {
		depth = DefaultNotifyDepth
	}
	p := &FlusherPool{
		flushers:      make([]*flusher, n),
		busyPoll:      cfg.BusyPoll,
		escalateAfter: after,
		pin:           cfg.PinCPUs,
	}
	if cfg.KernelSubmit {
		// Probe once, eagerly: flushers open their own rings lazily, but the
		// verdict must be known now so NewEgress can decide whether to dup
		// connection fds (and observers can report the active backend).
		if r, err := submit.NewRing(sweepRingEntries); err == nil {
			r.Close()
			p.kernelOK.Store(true)
		}
	}
	for i := range p.flushers {
		fl := &flusher{
			pool:   p,
			idx:    i,
			notify: queue.NewMPSC[*Egress](depth),
			parker: queue.NewParker(),
		}
		p.flushers[i] = fl
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			fl.run(0)
		}()
	}
	return p
}

// Size returns the configured flusher count (replacements excluded).
func (p *FlusherPool) Size() int { return len(p.flushers) }

// Escalations reports how many replacement flushers wedged writes forced.
func (p *FlusherPool) Escalations() uint64 { return p.escalations.Load() }

// Close stops every flusher and waits for them (deposed replacements
// included). Callers must Close and Wait every pooled Egress first — the
// broker and gateway shut subscribers down before their pool — so the only
// notify entries left are strays from enqueues racing the shutdown; those
// are swept inline.
func (p *FlusherPool) Close() {
	p.closed.Store(true)
	for _, fl := range p.flushers {
		fl.parker.Unpark()
	}
	p.wg.Wait()
	for _, fl := range p.flushers {
		gen := fl.gen.Load()
		for {
			e := fl.popNotify(gen)
			if e == nil {
				break
			}
			fl.process(e, gen, false)
		}
	}
}

// assign picks the next flusher round-robin. Sticky for the egress's life,
// so one connection's frames are never reordered across flushers.
func (p *FlusherPool) assign() *flusher {
	return p.flushers[p.next.Add(1)%uint64(len(p.flushers))]
}

// flusher is one pool member: a notify ring of egresses with pending
// frames, the parker it sleeps on, and the generation/in-flight state the
// escalation protocol reads.
type flusher struct {
	pool   *FlusherPool
	idx    int // position in the pool, for CPU pinning
	notify *queue.MPSC[*Egress]
	parker *queue.Parker

	// consumeMu serializes notify.PopInto across generations: the MPSC
	// consumer side is single-owner, and ownership moves from a deposed
	// goroutine to its replacement.
	consumeMu sync.Mutex
	// gen is the current owner generation; a goroutine whose generation
	// fell behind has been deposed and must stop touching the notify ring.
	gen atomic.Uint64
	// inFlight is the UnixNano start time of the owner's current write
	// (0 when none); enqueues compare it against EscalateAfter.
	inFlight atomic.Int64
	// writing is the egress the in-flight write is for. A full-ring enqueue
	// on that same egress skips escalation: at most one goroutine processes
	// an egress, so a replacement flusher could not drain that ring either —
	// the producer's only options are the ones it already has (shed or wait).
	writing atomic.Pointer[Egress]
}

// run drains the notify ring until the pool closes or this goroutine is
// deposed by an escalation.
//
// With the kernel backend, draining is a two-beat sweep: gather — pop
// ready egresses, collect each one's batch, take its conn lock, queue its
// vectored write on the ring — then submit the whole gathering with one
// io_uring_enter and resolve the completions (sweepFlush). Without it (or
// for egresses whose conns expose no fd), each popped egress is processed
// to empty sequentially, exactly the pre-submit behavior.
//
// Each generation opens its own Ring: a deposed goroutine and its
// replacement must never share SQ/CQ state, and sweepFlush is synchronous,
// so no SQE ever outlives the goroutine that queued it.
func (fl *flusher) run(gen uint64) {
	if cpus := fl.pool.pin; len(cpus) > 0 {
		// Best effort: an offline or out-of-range CPU leaves the flusher
		// unpinned rather than dead.
		_ = submit.Pin(cpus[fl.idx%len(cpus)])
	}
	var ring *submit.Ring
	if fl.pool.kernelOK.Load() {
		if r, err := submit.NewRing(sweepRingEntries); err == nil {
			ring = r
			defer r.Close()
		} else {
			fl.pool.kernelOK.Store(false)
		}
	}
	sweep := make([]sweepEntry, 0, maxSweepConns)
	ready := func() bool {
		return !fl.notify.Empty() || fl.pool.closed.Load() || fl.gen.Load() != gen
	}
	for {
		if fl.gen.Load() != gen {
			// Deposed mid-gather: the collected batches are this goroutine's
			// custody — submit them before handing the notify ring over.
			fl.sweepFlush(&sweep, ring, gen)
			return
		}
		if e := fl.popNotify(gen); e != nil {
			if ring == nil || e.sfd < 0 {
				fl.process(e, gen, true)
				continue
			}
			fl.sweepAdd(&sweep, ring, e, gen)
			if len(sweep) < maxSweepConns && !fl.notify.Empty() {
				continue // keep gathering while more rings are ready
			}
			fl.sweepFlush(&sweep, ring, gen)
			continue
		}
		fl.sweepFlush(&sweep, ring, gen)
		if fl.pool.closed.Load() {
			return
		}
		if fl.pool.busyPoll && fl.parker.Spin(ready, flusherSpins) {
			continue
		}
		fl.parker.Park(ready)
	}
}

// popNotify takes one queued egress, or nil when the ring is empty or gen
// was deposed.
func (fl *flusher) popNotify(gen uint64) *Egress {
	fl.consumeMu.Lock()
	defer fl.consumeMu.Unlock()
	if fl.gen.Load() != gen {
		return nil
	}
	var e *Egress
	fl.notify.PopInto(func(p **Egress) { e, *p = *p, nil })
	return e
}

// submit hands an egress that just flipped idle→queued to the flusher.
// Callers hold no locks. The notify ring holds each egress at most once,
// so a full ring means more assigned egresses than NotifyDepth went ready
// at once; spin until the flusher (or its replacement) makes room.
func (fl *flusher) submit(e *Egress) {
	if fl.pool.closed.Load() {
		// Shutdown stray: no flusher will sweep, so drain it here.
		go fl.process(e, fl.gen.Load(), false)
		return
	}
	for !fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
		fl.maybeEscalate(e)
		runtime.Gosched()
	}
	fl.parker.Unpark()
}

// process drains one egress to empty: collect a batch under its mutex,
// write outside it, repeat. Exactly one goroutine runs process per egress
// at a time (the egQueued handoff guarantees it).
//
// With canLinger, a drained egress is not idled on the spot: the first
// empty visit keeps it egQueued and re-pushes it onto the notify ring, so
// a connection that was hot this sweep gets one more look after the rest
// of the ready rings. While it lingers, producers skip the submit and
// unpark — the flusher is already coming back, and the run loop will not
// park while the notify ring is non-empty. The second consecutive empty
// visit idles it for real. Custody stays in the shared ring the whole
// time, so escalation hands lingering egresses to the replacement flusher
// like any other queued entry.
func (fl *flusher) process(e *Egress, gen uint64, canLinger bool) {
	for {
		e.mu.Lock()
		n := e.collectLocked()
		if n == 0 {
			if canLinger && !e.lingered && !e.closed && !fl.pool.closed.Load() &&
				fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
				e.lingered = true
				e.mu.Unlock()
				// Usually the requeuer is the ring's owner and cannot be
				// parked, but a deposed goroutine requeues into a ring its
				// replacement owns — and that owner may already be asleep.
				// Unpark is one atomic load when nobody is.
				fl.parker.Unpark()
				return
			}
			closed := e.closed
			e.state = egIdle
			e.lingered = false
			e.mu.Unlock()
			if closed {
				e.finalize()
			}
			return
		}
		e.lingered = false
		e.mu.Unlock()
		err := fl.stamped(e, gen, func() error { return e.flushBatch(n) })
		if err != nil {
			// flushBatch closed and drained the egress; nothing further
			// will be queued, so finalize here.
			e.mu.Lock()
			e.state = egIdle
			e.mu.Unlock()
			e.finalize()
			return
		}
	}
}

// stamped runs one potentially blocking operation on e's connection with
// the escalation stamp armed — but only while still the owner generation,
// so a deposed goroutine nursing a wedged connection does not retrigger
// escalation of its replacement. Enqueues that find their ring full age
// the stamp and depose the flusher if the operation wedges.
func (fl *flusher) stamped(e *Egress, gen uint64, op func() error) error {
	var stamp int64
	if fl.gen.Load() == gen {
		fl.writing.Store(e)
		stamp = time.Now().UnixNano()
		fl.inFlight.Store(stamp)
	}
	err := op()
	if stamp != 0 {
		fl.inFlight.CompareAndSwap(stamp, 0)
		fl.writing.CompareAndSwap(e, nil)
	}
	return err
}

// sweepEntry is one connection's collected batch riding the current sweep:
// the egress's frame references sit in its batch scratch, its wire image in
// its vecs scratch (queued on the ring), and its conn's submit lock is held
// until the entry resolves.
type sweepEntry struct {
	e     *Egress
	n     int // frames collected
	bytes int // total wire bytes queued
}

// sweepAdd visits one ready egress for the gathering sweep: collect its
// batch, take its conn's submit lock, and queue its vectored write on the
// ring. Empty rings take the same linger/idle path as a sequential visit.
// The submit lock is held from here until the entry resolves in sweepFlush
// so nothing — control-plane Sends included — can interleave bytes into
// the middle of a submitted frame; lock acquisition runs under the
// escalation stamp because a Send wedged on a full socket can hold that
// lock indefinitely, and ring-mates must be able to depose this flusher.
func (fl *flusher) sweepAdd(sweep *[]sweepEntry, ring *submit.Ring, e *Egress, gen uint64) {
	e.mu.Lock()
	n := e.collectLocked()
	if n == 0 {
		if !e.lingered && !e.closed && !fl.pool.closed.Load() &&
			fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
			e.lingered = true
			e.mu.Unlock()
			fl.parker.Unpark()
			return
		}
		closed := e.closed
		e.state = egIdle
		e.lingered = false
		e.mu.Unlock()
		if closed {
			e.finalize()
		}
		return
	}
	e.lingered = false
	e.mu.Unlock()
	total := e.prepareBatch()
	if err := fl.stamped(e, gen, e.conn.lockSubmit); err != nil {
		// Sticky error or closed conn: same terminal path as a failed flush.
		e.failBatch(err)
		fl.idleAndFinalize(e)
		return
	}
	if !ring.Add(e.sfd, e.vecs) {
		// Unreachable while the MaxEgressBatch clamp holds (a batch is at
		// most IOVMax iovecs); kept as a correctness backstop — write this
		// connection sequentially rather than split its frames across SQEs.
		fl.resolveWrite(e, n, total, gen)
		return
	}
	*sweep = append(*sweep, sweepEntry{e: e, n: n, bytes: total})
}

// sweepFlush submits every gathered batch with one kernel submission and
// resolves the completions. Full successes settle first — their refcounts,
// conn locks, and requeues release immediately — then the stragglers:
// a short write resumes its remainder and an EAGAIN (socket buffer full)
// rewrites its whole batch on the sequential blocking path under the
// write-stall bound and the escalation stamp, which is exactly where a
// genuinely wedged fd parks while its batch-mates have already completed.
// Hard per-fd errors (EPIPE, ECONNRESET, ...) close that egress alone.
func (fl *flusher) sweepFlush(sweep *[]sweepEntry, ring *submit.Ring, gen uint64) {
	ents := *sweep
	if len(ents) == 0 {
		return
	}
	*sweep = (*sweep)[:0]
	res, enters, err := ring.Flush()
	fl.pool.submits.Add(1)
	fl.pool.enterSyscalls.Add(uint64(enters))
	fl.pool.sweepConns.Add(uint64(len(ents)))
	if err != nil {
		// Ring-level failure (not any one write): degrade the pool to the
		// sequential path. Zero-valued results were never submitted and
		// resolve below as whole-batch sequential writes.
		fl.pool.kernelOK.Store(false)
	}
	for i := range ents {
		if err == nil && res[i].Errno == 0 && res[i].N == ents[i].bytes {
			e := ents[i].e
			e.conn.countSentLocked(ents[i].n, ents[i].bytes)
			e.conn.unlockSubmit()
			e.settleBatch(ents[i].n)
			fl.requeue(e, gen)
			ents[i].e = nil
		}
	}
	for i := range ents {
		e := ents[i].e
		if e == nil {
			continue
		}
		ents[i].e = nil
		var r submit.Result
		if err == nil {
			r = res[i]
		}
		switch {
		case r.Errno == 0 && r.N > 0 && r.N < ents[i].bytes:
			// Short write: the socket buffer filled mid-batch. Consume what
			// the kernel wrote and resume the remainder before releasing the
			// conn lock — a partially written frame must complete or the
			// stream dies, never carry an interleaved frame.
			e.vecs = consumeBuffers(e.vecs, r.N)
			fl.resolveWrite(e, ents[i].n, ents[i].bytes, gen)
		case r.Errno != 0 && r.Errno != syscall.EAGAIN && r.Errno != syscall.EINTR:
			werr := e.conn.stickySubmitLocked(r.Errno)
			e.conn.unlockSubmit()
			e.failBatch(werr)
			fl.idleAndFinalize(e)
		default:
			// EAGAIN, EINTR, or never submitted: nothing was written; push
			// the whole batch through the sequential path.
			fl.resolveWrite(e, ents[i].n, ents[i].bytes, gen)
		}
	}
}

// resolveWrite drains one sweep entry's remaining bytes through the
// sequential blocking path under the conn lock the sweep already holds,
// then settles the batch (metering the full frame/byte counts once) and
// requeues the egress. Runs under the escalation stamp: this is the only
// place a sweep can block on a slow socket.
func (fl *flusher) resolveWrite(e *Egress, n, bytes int, gen uint64) {
	err := fl.stamped(e, gen, func() error { return e.conn.writeBuffersLocked(e.vecs) })
	if e.meter != nil {
		e.meter.WriteSyscalls.Add(1)
	}
	if err != nil {
		e.conn.unlockSubmit()
		e.failBatch(err)
		fl.idleAndFinalize(e)
		return
	}
	e.conn.countSentLocked(n, bytes)
	e.conn.unlockSubmit()
	e.settleBatch(n)
	fl.requeue(e, gen)
}

// requeue settles an egress's queue state after a successful sweep flush.
// A still-hot ring goes back onto the notify ring for the next sweep (or
// drains inline when the notify ring is full); an empty one takes the
// usual linger-once-then-idle path, finalizing if closed.
func (fl *flusher) requeue(e *Egress, gen uint64) {
	e.mu.Lock()
	if e.count > 0 {
		if !fl.pool.closed.Load() && fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
			e.lingered = false
			e.mu.Unlock()
			fl.parker.Unpark()
			return
		}
		e.mu.Unlock()
		fl.process(e, gen, false)
		return
	}
	if !e.lingered && !e.closed && !fl.pool.closed.Load() &&
		fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
		e.lingered = true
		e.mu.Unlock()
		fl.parker.Unpark()
		return
	}
	closed := e.closed
	e.state = egIdle
	e.lingered = false
	e.mu.Unlock()
	if closed {
		e.finalize()
	}
}

// idleAndFinalize performs the terminal transition after a failed sweep
// write: failBatch already closed and drained the egress, so nothing will
// be queued again and the egress reaches its terminal state here.
func (fl *flusher) idleAndFinalize(e *Egress) {
	e.mu.Lock()
	e.state = egIdle
	e.mu.Unlock()
	e.finalize()
}

// maybeEscalate spawns a replacement flusher when the owner's current
// write has been in flight past the pool's EscalateAfter bound. The CAS on
// gen makes exactly one caller win per wedge. from is the caller's own
// egress: when the aged write is on that very ring, escalation is skipped —
// a replacement could not touch it either (one processor per egress), and
// spawning one per full-ring probe under a fast producer is pure goroutine
// churn.
func (fl *flusher) maybeEscalate(from *Egress) {
	ts := fl.inFlight.Load()
	if ts == 0 {
		return
	}
	if fl.writing.Load() == from {
		return
	}
	if time.Now().UnixNano()-ts < int64(fl.pool.escalateAfter) {
		return
	}
	// The stamp may be aged only because the flusher lost its CPU — on a
	// saturated or single-core box a preempted goroutine easily sits
	// runnable past EscalateAfter with its stamp still set. Yield first: a
	// merely-descheduled flusher gets the processor, finishes its write,
	// and clears (or replaces) the stamp; one parked in a wedged write
	// cannot. Only an unchanged stamp after the yield means a real wedge.
	runtime.Gosched()
	gen := fl.gen.Load()
	if fl.inFlight.Load() != ts {
		return // the write finished (or a new one started); re-age later
	}
	if !fl.gen.CompareAndSwap(gen, gen+1) {
		return // another enqueue escalated first
	}
	fl.pool.escalations.Add(1)
	fl.pool.wg.Add(1)
	go func() {
		defer fl.pool.wg.Done()
		fl.run(gen + 1)
	}()
}
