// Shared egress flushers: a small pool of writer goroutines sweeping many
// subscriber rings per wakeup.
//
// PR 5's egress gave every subscriber its own writer goroutine. That keeps
// sockets isolated, but at high fan-out the cost moved into the scheduler:
// N hot subscribers mean N cond.Broadcast wakeups and N runnable goroutines
// per dispatched message. A FlusherPool inverts the ratio: egresses are
// assigned round-robin to a fixed set of flushers, an egress is handed to
// its flusher only on an idle→queued edge (one atomic-free state check per
// enqueue, under the ring mutex the enqueue already holds), and each
// flusher drains every ready ring per wakeup — so N hot subscribers cost
// O(flushers) wakeups instead of O(N).
//
// Ownership protocol (all transitions under the egress's own mutex):
//
//	state == egIdle   → no flusher holds the egress; the next enqueue
//	                    flips it to egQueued and submits it exactly once.
//	state == egQueued → the egress sits in its flusher's notify ring (or
//	                    is being processed); further enqueues do nothing.
//
// The flusher returns an egress to egIdle only after finding its ring
// empty under the mutex, so an enqueue racing that transition either lands
// before the check (the flusher sees it and keeps draining) or after the
// store (its own idle→queued edge resubmits). No missed flushes, at most
// one processor per egress at any time — which is also what keeps the
// per-connection frame order intact.
//
// Wedged-socket escalation: a flusher stuck in a write on one wedged
// connection would head-of-line-block its other rings — exactly the
// coupling PR 5 removed. Enqueues that find their ring full while their
// flusher's in-flight write is older than EscalateAfter bump the flusher's
// generation and spawn a replacement goroutine that takes over the notify
// ring. The deposed goroutine keeps sole ownership of the egress it is
// stuck on (it became that connection's de-facto dedicated writer), and
// exits once that egress drains or dies.
package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
)

// Pooled-egress defaults.
const (
	// DefaultFlushers is the pool size when FlusherPoolConfig.Flushers <= 0:
	// enough parallelism to keep several NICs busy, few enough that wakeup
	// coalescing still wins at high fan-out.
	DefaultFlushers = 4
	// DefaultEscalateAfter is the in-flight write age past which a full-ring
	// enqueue escalates its flusher. Two orders above a healthy writev,
	// three under the write-stall bounds deployments actually set.
	DefaultEscalateAfter = 2 * time.Millisecond
	// DefaultNotifyDepth sizes each flusher's notify ring. An egress is
	// queued at most once, so this bounds the egresses per flusher before
	// submit briefly spins.
	DefaultNotifyDepth = 4096
	// flusherSpins is the busy-poll probe budget before a flusher parks.
	flusherSpins = 4096
)

// Egress pooled-mode states, guarded by Egress.mu.
const (
	egIdle int32 = iota
	egQueued
)

// FlusherPoolConfig parameterizes a FlusherPool.
type FlusherPoolConfig struct {
	// Flushers is the number of writer goroutines (DefaultFlushers when <= 0).
	Flushers int
	// BusyPoll keeps idle flushers spinning briefly before parking,
	// trading CPU for wakeup latency (-busy-poll).
	BusyPoll bool
	// EscalateAfter is the in-flight write age that triggers a replacement
	// flusher (DefaultEscalateAfter when <= 0).
	EscalateAfter time.Duration
	// NotifyDepth sizes each flusher's notify ring (DefaultNotifyDepth
	// when <= 0).
	NotifyDepth int
}

// FlusherPool drains the rings of every Egress created with Pool set to it.
type FlusherPool struct {
	flushers      []*flusher
	next          atomic.Uint64
	closed        atomic.Bool
	wg            sync.WaitGroup
	busyPoll      bool
	escalateAfter time.Duration
	escalations   atomic.Uint64
}

// NewFlusherPool starts cfg.Flushers writer goroutines.
func NewFlusherPool(cfg FlusherPoolConfig) *FlusherPool {
	// Deliberately not capped at GOMAXPROCS: extra flushers on a small box
	// cost context switches, but they are also the only thing standing
	// between a wedged connection and its ring-mates during the window
	// before escalation fires — a pool of one couples every subscriber to
	// the first stuck socket.
	n := cfg.Flushers
	if n <= 0 {
		n = DefaultFlushers
	}
	after := cfg.EscalateAfter
	if after <= 0 {
		after = DefaultEscalateAfter
	}
	depth := cfg.NotifyDepth
	if depth <= 0 {
		depth = DefaultNotifyDepth
	}
	p := &FlusherPool{
		flushers:      make([]*flusher, n),
		busyPoll:      cfg.BusyPoll,
		escalateAfter: after,
	}
	for i := range p.flushers {
		fl := &flusher{
			pool:   p,
			notify: queue.NewMPSC[*Egress](depth),
			parker: queue.NewParker(),
		}
		p.flushers[i] = fl
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			fl.run(0)
		}()
	}
	return p
}

// Size returns the configured flusher count (replacements excluded).
func (p *FlusherPool) Size() int { return len(p.flushers) }

// Escalations reports how many replacement flushers wedged writes forced.
func (p *FlusherPool) Escalations() uint64 { return p.escalations.Load() }

// Close stops every flusher and waits for them (deposed replacements
// included). Callers must Close and Wait every pooled Egress first — the
// broker and gateway shut subscribers down before their pool — so the only
// notify entries left are strays from enqueues racing the shutdown; those
// are swept inline.
func (p *FlusherPool) Close() {
	p.closed.Store(true)
	for _, fl := range p.flushers {
		fl.parker.Unpark()
	}
	p.wg.Wait()
	for _, fl := range p.flushers {
		gen := fl.gen.Load()
		for {
			e := fl.popNotify(gen)
			if e == nil {
				break
			}
			fl.process(e, gen, false)
		}
	}
}

// assign picks the next flusher round-robin. Sticky for the egress's life,
// so one connection's frames are never reordered across flushers.
func (p *FlusherPool) assign() *flusher {
	return p.flushers[p.next.Add(1)%uint64(len(p.flushers))]
}

// flusher is one pool member: a notify ring of egresses with pending
// frames, the parker it sleeps on, and the generation/in-flight state the
// escalation protocol reads.
type flusher struct {
	pool   *FlusherPool
	notify *queue.MPSC[*Egress]
	parker *queue.Parker

	// consumeMu serializes notify.PopInto across generations: the MPSC
	// consumer side is single-owner, and ownership moves from a deposed
	// goroutine to its replacement.
	consumeMu sync.Mutex
	// gen is the current owner generation; a goroutine whose generation
	// fell behind has been deposed and must stop touching the notify ring.
	gen atomic.Uint64
	// inFlight is the UnixNano start time of the owner's current write
	// (0 when none); enqueues compare it against EscalateAfter.
	inFlight atomic.Int64
	// writing is the egress the in-flight write is for. A full-ring enqueue
	// on that same egress skips escalation: at most one goroutine processes
	// an egress, so a replacement flusher could not drain that ring either —
	// the producer's only options are the ones it already has (shed or wait).
	writing atomic.Pointer[Egress]
}

// run drains the notify ring until the pool closes or this goroutine is
// deposed by an escalation.
func (fl *flusher) run(gen uint64) {
	ready := func() bool {
		return !fl.notify.Empty() || fl.pool.closed.Load() || fl.gen.Load() != gen
	}
	for {
		if fl.gen.Load() != gen {
			return
		}
		if e := fl.popNotify(gen); e != nil {
			fl.process(e, gen, true)
			continue
		}
		if fl.pool.closed.Load() {
			return
		}
		if fl.pool.busyPoll && fl.parker.Spin(ready, flusherSpins) {
			continue
		}
		fl.parker.Park(ready)
	}
}

// popNotify takes one queued egress, or nil when the ring is empty or gen
// was deposed.
func (fl *flusher) popNotify(gen uint64) *Egress {
	fl.consumeMu.Lock()
	defer fl.consumeMu.Unlock()
	if fl.gen.Load() != gen {
		return nil
	}
	var e *Egress
	fl.notify.PopInto(func(p **Egress) { e, *p = *p, nil })
	return e
}

// submit hands an egress that just flipped idle→queued to the flusher.
// Callers hold no locks. The notify ring holds each egress at most once,
// so a full ring means more assigned egresses than NotifyDepth went ready
// at once; spin until the flusher (or its replacement) makes room.
func (fl *flusher) submit(e *Egress) {
	if fl.pool.closed.Load() {
		// Shutdown stray: no flusher will sweep, so drain it here.
		go fl.process(e, fl.gen.Load(), false)
		return
	}
	for !fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
		fl.maybeEscalate(e)
		runtime.Gosched()
	}
	fl.parker.Unpark()
}

// process drains one egress to empty: collect a batch under its mutex,
// write outside it, repeat. Exactly one goroutine runs process per egress
// at a time (the egQueued handoff guarantees it).
//
// With canLinger, a drained egress is not idled on the spot: the first
// empty visit keeps it egQueued and re-pushes it onto the notify ring, so
// a connection that was hot this sweep gets one more look after the rest
// of the ready rings. While it lingers, producers skip the submit and
// unpark — the flusher is already coming back, and the run loop will not
// park while the notify ring is non-empty. The second consecutive empty
// visit idles it for real. Custody stays in the shared ring the whole
// time, so escalation hands lingering egresses to the replacement flusher
// like any other queued entry.
func (fl *flusher) process(e *Egress, gen uint64, canLinger bool) {
	for {
		e.mu.Lock()
		n := e.collectLocked()
		if n == 0 {
			if canLinger && !e.lingered && !e.closed && !fl.pool.closed.Load() &&
				fl.notify.PushInPlace(func(p **Egress) { *p = e }) {
				e.lingered = true
				e.mu.Unlock()
				// Usually the requeuer is the ring's owner and cannot be
				// parked, but a deposed goroutine requeues into a ring its
				// replacement owns — and that owner may already be asleep.
				// Unpark is one atomic load when nobody is.
				fl.parker.Unpark()
				return
			}
			closed := e.closed
			e.state = egIdle
			e.lingered = false
			e.mu.Unlock()
			if closed {
				e.finalize()
			}
			return
		}
		e.lingered = false
		e.mu.Unlock()
		// Stamp the write so enqueues can age it — but only while still
		// the owner generation, so a deposed goroutine nursing a wedged
		// connection does not retrigger escalation of its replacement.
		var stamp int64
		if fl.gen.Load() == gen {
			fl.writing.Store(e)
			stamp = time.Now().UnixNano()
			fl.inFlight.Store(stamp)
		}
		err := e.flushBatch(n)
		if stamp != 0 {
			fl.inFlight.CompareAndSwap(stamp, 0)
			fl.writing.CompareAndSwap(e, nil)
		}
		if err != nil {
			// flushBatch closed and drained the egress; nothing further
			// will be queued, so finalize here.
			e.mu.Lock()
			e.state = egIdle
			e.mu.Unlock()
			e.finalize()
			return
		}
	}
}

// maybeEscalate spawns a replacement flusher when the owner's current
// write has been in flight past the pool's EscalateAfter bound. The CAS on
// gen makes exactly one caller win per wedge. from is the caller's own
// egress: when the aged write is on that very ring, escalation is skipped —
// a replacement could not touch it either (one processor per egress), and
// spawning one per full-ring probe under a fast producer is pure goroutine
// churn.
func (fl *flusher) maybeEscalate(from *Egress) {
	ts := fl.inFlight.Load()
	if ts == 0 {
		return
	}
	if fl.writing.Load() == from {
		return
	}
	if time.Now().UnixNano()-ts < int64(fl.pool.escalateAfter) {
		return
	}
	// The stamp may be aged only because the flusher lost its CPU — on a
	// saturated or single-core box a preempted goroutine easily sits
	// runnable past EscalateAfter with its stamp still set. Yield first: a
	// merely-descheduled flusher gets the processor, finishes its write,
	// and clears (or replaces) the stamp; one parked in a wedged write
	// cannot. Only an unchanged stamp after the yield means a real wedge.
	runtime.Gosched()
	gen := fl.gen.Load()
	if fl.inFlight.Load() != ts {
		return // the write finished (or a new one started); re-age later
	}
	if !fl.gen.CompareAndSwap(gen, gen+1) {
		return // another enqueue escalated first
	}
	fl.pool.escalations.Add(1)
	fl.pool.wg.Add(1)
	go func() {
		defer fl.pool.wg.Done()
		fl.run(gen + 1)
	}()
}
