// Pooled wire.Frame lifecycle.
//
// Session loops receive one frame at a time, handle it synchronously, and
// receive the next — a textbook reuse pattern. GetFrame/PutFrame back that
// pattern with a sync.Pool so frames (and the payload/topic storage they
// accrete via Conn.RecvInto) recirculate across sessions instead of being
// reallocated per connection, with capacity caps so one jumbo frame cannot
// park megabytes in the pool forever.
package transport

import (
	"sync"

	"repro/internal/wire"
)

// Capacity a pooled frame may keep between uses. Oversized buffers (grown
// by a rare jumbo payload or subscription list) are dropped at PutFrame so
// the pool converges on workload-sized frames.
const (
	pooledPayloadCap = 64 << 10
	pooledTopicsCap  = 4096
)

var framePool = sync.Pool{New: func() any { return new(wire.Frame) }}

// GetFrame returns a reusable Frame from the package pool. Pair with
// PutFrame when the frame is no longer referenced.
func GetFrame() *wire.Frame { return framePool.Get().(*wire.Frame) }

// PutFrame resets f and returns it to the pool, retaining (capped) payload
// and topic-list capacity for the next user. The caller must not touch f —
// nor any payload decoded into it in copy mode — after PutFrame.
func PutFrame(f *wire.Frame) {
	payload := f.Msg.Payload
	topics := f.Topics
	if cap(payload) > pooledPayloadCap {
		payload = nil
	}
	if cap(topics) > pooledTopicsCap {
		topics = nil
	}
	*f = wire.Frame{}
	f.Msg.Payload = payload[:0]
	f.Topics = topics[:0]
	framePool.Put(f)
}
