// Package metrics implements the measurement machinery of the FRAME
// evaluation (§VI): end-to-end latency distributions, per-topic consecutive
// message-loss tracking (Table 4), deadline success rates (Table 5),
// modeled CPU utilization accounting (Fig. 7), and confidence intervals
// across repeated runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates a latency distribution with reservoir-free
// exact percentiles (it keeps all samples; evaluation runs record at most a
// few million). The zero value is ready to use. All methods are safe for
// concurrent use: Percentile sorts the sample slice in place, so without
// the lock a concurrent Record could observe (or corrupt) the mid-sort
// slice. Runtime hot paths should prefer obsv.Histogram, which streams
// into fixed buckets instead of keeping every sample.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the mean latency, or zero with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Max returns the maximum sample, or zero with no samples.
func (r *LatencyRecorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var m time.Duration
	for _, s := range r.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Percentile returns the p-quantile (0 < p ≤ 1) by nearest-rank, or zero
// with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 1 {
		return r.samples[len(r.samples)-1]
	}
	rank := int(math.Ceil(p*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return r.samples[rank]
}

// MeetRate returns the fraction of samples at or below bound.
func (r *LatencyRecorder) MeetRate(bound time.Duration) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 1
	}
	met := 0
	for _, s := range r.samples {
		if s <= bound {
			met++
		}
	}
	return float64(met) / float64(len(r.samples))
}

// Samples returns a copy of the recorded samples: in insertion order if the
// recorder has never been asked for percentiles (which sort in place),
// ascending afterwards. Used by the Fig. 9 time-series.
func (r *LatencyRecorder) Samples() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.samples...)
}

// LossTracker watches one topic's delivered sequence numbers and reports the
// longest run of consecutive losses (§III-B: a subscriber tolerates at most
// Li consecutive losses). Duplicates are discarded, as in §VI-C ("We only
// show results of distinct messages... Duplicated messages were discarded").
// Sequence numbers start at 1. The zero value tracks from seq 0.
type LossTracker struct {
	highest    uint64
	delivered  uint64
	duplicates uint64
	maxRun     int
	// lastSeen is the highest contiguous... we track gaps via a set-free
	// approach: because brokers deliver in near-order but recovery may
	// reorder, we buffer out-of-order arrivals in a window.
	seen map[uint64]bool
}

// NewLossTracker returns a tracker expecting sequences from 1.
func NewLossTracker() *LossTracker {
	return &LossTracker{seen: make(map[uint64]bool)}
}

// Deliver records the arrival of sequence seq. Order does not matter;
// duplicates are counted and ignored.
func (l *LossTracker) Deliver(seq uint64) {
	if l.seen[seq] {
		l.duplicates++
		return
	}
	l.seen[seq] = true
	l.delivered++
	if seq > l.highest {
		l.highest = seq
	}
}

// Finalize computes loss statistics given the last sequence number the
// publisher actually created. Sequences (highestCreated, ∞) never existed.
func (l *LossTracker) Finalize(highestCreated uint64) LossStats {
	maxRun, run := 0, 0
	var lost uint64
	for s := uint64(1); s <= highestCreated; s++ {
		if l.seen[s] {
			run = 0
			continue
		}
		lost++
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	l.maxRun = maxRun
	return LossStats{
		Created:        highestCreated,
		Delivered:      l.delivered,
		Duplicates:     l.duplicates,
		Lost:           lost,
		MaxConsecutive: maxRun,
	}
}

// LossStats summarizes one topic's delivery record.
type LossStats struct {
	Created        uint64
	Delivered      uint64
	Duplicates     uint64
	Lost           uint64
	MaxConsecutive int
}

// Meets reports whether the record satisfies loss tolerance li (with
// li = spec.LossUnbounded semantics handled by the caller passing a huge li).
func (s LossStats) Meets(li int) bool { return s.MaxConsecutive <= li }

// Utilization models CPU accounting for one module (Fig. 7): busy time
// accumulated against a core budget.
type Utilization struct {
	Cores int
	busy  time.Duration
}

// NewUtilization returns an accumulator for a module running on cores.
func NewUtilization(cores int) *Utilization {
	if cores <= 0 {
		panic(fmt.Sprintf("metrics: cores %d must be positive", cores))
	}
	return &Utilization{Cores: cores}
}

// AddBusy charges d of CPU work to the module.
func (u *Utilization) AddBusy(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative busy time %v", d))
	}
	u.busy += d
}

// Busy returns the accumulated busy time.
func (u *Utilization) Busy() time.Duration { return u.busy }

// Percent returns utilization over the window as a percentage of the
// module's total core capacity. It can exceed 100 only if accounting
// over-charges; callers treat ≥100 as saturated.
func (u *Utilization) Percent(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return 100 * float64(u.busy) / (float64(window) * float64(u.Cores))
}

// Series is a set of repeated-run measurements of one quantity.
type Series []float64

// Mean returns the arithmetic mean (zero for an empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// StdDev returns the sample standard deviation (zero for n < 2).
func (s Series) StdDev() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation the paper's error bars imply (1.96·σ/√n).
func (s Series) CI95() float64 {
	if len(s) < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(len(s)))
}

// FormatMeanCI renders "mean ± ci" the way the paper's tables do: plain
// mean when the interval is zero, scientific notation for tiny intervals.
func (s Series) FormatMeanCI() string {
	m, ci := s.Mean(), s.CI95()
	if ci == 0 {
		return fmt.Sprintf("%.1f", m)
	}
	if ci < 0.1 {
		return fmt.Sprintf("%.1f ± %.1E", m, ci)
	}
	return fmt.Sprintf("%.1f ± %.1f", m, ci)
}
