package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyRecorderBasics(t *testing.T) {
	var r LatencyRecorder
	if r.Mean() != 0 || r.Max() != 0 || r.Percentile(0.5) != 0 {
		t.Error("empty recorder not zero-valued")
	}
	if r.MeetRate(time.Second) != 1 {
		t.Error("empty recorder MeetRate != 1")
	}
	for _, ms := range []int{10, 20, 30, 40} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	if r.Count() != 4 {
		t.Errorf("Count = %d", r.Count())
	}
	if r.Mean() != 25*time.Millisecond {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.Max() != 40*time.Millisecond {
		t.Errorf("Max = %v", r.Max())
	}
	if got := r.MeetRate(20 * time.Millisecond); got != 0.5 {
		t.Errorf("MeetRate = %v", got)
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	var r LatencyRecorder
	for i := 100; i >= 1; i-- { // reversed insertion
		r.Record(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.01, 1 * time.Millisecond},
		{0.5, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := r.Percentile(tc.p); got != tc.want {
			t.Errorf("P%.0f = %v, want %v", tc.p*100, got, tc.want)
		}
	}
}

func TestLossTrackerPerfectDelivery(t *testing.T) {
	l := NewLossTracker()
	for s := uint64(1); s <= 100; s++ {
		l.Deliver(s)
	}
	st := l.Finalize(100)
	if st.Lost != 0 || st.MaxConsecutive != 0 || st.Delivered != 100 {
		t.Errorf("stats = %+v", st)
	}
	if !st.Meets(0) {
		t.Error("perfect delivery fails Li=0")
	}
}

func TestLossTrackerGapsAndDuplicates(t *testing.T) {
	l := NewLossTracker()
	// Deliver 1,2,5,6,7,10 out of 1..12 (losses: 3,4 then 8,9 then 11,12).
	for _, s := range []uint64{5, 1, 6, 2, 7, 10, 10, 1} {
		l.Deliver(s)
	}
	st := l.Finalize(12)
	if st.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", st.Duplicates)
	}
	if st.Lost != 6 {
		t.Errorf("Lost = %d, want 6", st.Lost)
	}
	if st.MaxConsecutive != 2 {
		t.Errorf("MaxConsecutive = %d, want 2", st.MaxConsecutive)
	}
	if st.Meets(1) || !st.Meets(2) {
		t.Error("Meets thresholds wrong")
	}
}

func TestLossTrackerTrailingLoss(t *testing.T) {
	l := NewLossTracker()
	l.Deliver(1)
	st := l.Finalize(5)
	if st.MaxConsecutive != 4 {
		t.Errorf("MaxConsecutive = %d, want 4 (trailing losses count)", st.MaxConsecutive)
	}
}

func TestLossTrackerOutOfOrderEquivalentToInOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 50
		delivered := make([]uint64, 0, n)
		for s := uint64(1); s <= n; s++ {
			if rng.Intn(3) > 0 {
				delivered = append(delivered, s)
			}
		}
		inOrder := NewLossTracker()
		for _, s := range delivered {
			inOrder.Deliver(s)
		}
		shuffled := NewLossTracker()
		perm := rng.Perm(len(delivered))
		for _, i := range perm {
			shuffled.Deliver(delivered[i])
		}
		a, b := inOrder.Finalize(n), shuffled.Finalize(n)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	u := NewUtilization(2)
	u.AddBusy(500 * time.Millisecond)
	u.AddBusy(500 * time.Millisecond)
	if got := u.Percent(time.Second); math.Abs(got-50) > 1e-9 {
		t.Errorf("Percent = %v, want 50", got)
	}
	if u.Busy() != time.Second {
		t.Errorf("Busy = %v", u.Busy())
	}
	if u.Percent(0) != 0 {
		t.Error("zero window should give 0")
	}
}

func TestUtilizationPanics(t *testing.T) {
	t.Run("zero cores", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		NewUtilization(0)
	})
	t.Run("negative busy", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		NewUtilization(1).AddBusy(-time.Second)
	})
}

func TestSeriesStats(t *testing.T) {
	s := Series{2, 4, 4, 4, 5, 5, 7, 9}
	if m := s.Mean(); math.Abs(m-5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	if sd := s.StdDev(); math.Abs(sd-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", sd)
	}
	ci := s.CI95()
	want := 1.96 * 2.138089935 / math.Sqrt(8)
	if math.Abs(ci-want) > 1e-6 {
		t.Errorf("CI95 = %v, want %v", ci, want)
	}
	if (Series{}).Mean() != 0 || (Series{1}).StdDev() != 0 || (Series{1}).CI95() != 0 {
		t.Error("degenerate series not zero")
	}
}

func TestFormatMeanCI(t *testing.T) {
	if got := (Series{100, 100, 100}).FormatMeanCI(); got != "100.0" {
		t.Errorf("constant series = %q", got)
	}
	got := (Series{99.9, 99.92, 99.88}).FormatMeanCI()
	if !strings.Contains(got, "±") || !strings.Contains(got, "E") {
		t.Errorf("tiny CI should use scientific notation: %q", got)
	}
	got = (Series{80, 100, 60}).FormatMeanCI()
	if !strings.Contains(got, "80.0 ±") {
		t.Errorf("wide CI format: %q", got)
	}
}

func TestMeetRateProperty(t *testing.T) {
	f := func(raw []uint16, boundMs uint16) bool {
		var r LatencyRecorder
		bound := time.Duration(boundMs) * time.Microsecond
		want := 0
		for _, v := range raw {
			d := time.Duration(v) * time.Microsecond
			r.Record(d)
			if d <= bound {
				want++
			}
		}
		if len(raw) == 0 {
			return r.MeetRate(bound) == 1
		}
		return math.Abs(r.MeetRate(bound)-float64(want)/float64(len(raw))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLossTrackerDeliver(b *testing.B) {
	l := NewLossTracker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Deliver(uint64(i + 1))
	}
}

// TestLatencyRecorderConcurrent exercises the Record/Percentile race under
// the race detector: Percentile sorts the backing slice in place, so it and
// Record must serialize on the recorder's lock.
func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	const writers, each = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(time.Duration(w*each+i) * time.Microsecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Percentile(0.99)
				r.Mean()
				r.Samples()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Count(); got != writers*each {
		t.Errorf("Count = %d, want %d", got, writers*each)
	}
	// All samples intact and sorted order consistent after racing reads.
	if p100 := r.Percentile(1); p100 != time.Duration(writers*each-1)*time.Microsecond {
		t.Errorf("max percentile = %v", p100)
	}
}
