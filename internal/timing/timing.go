// Package timing implements the FRAME paper's timing model (§III): the
// sufficient relative deadlines for replication (Lemma 1) and dispatch
// (Lemma 2), the selective-replication condition (Proposition 1), and the
// admission test derived from them (§III-D-1).
//
// Deadlines exist in two forms, mirroring the implementation (§IV-A):
//
//   - Pseudo relative deadlines Dr' and Dd', computed once at configuration
//     time from everything except ΔPB:
//     Dr' = (Ni+Li)·Ti − ΔBB − x   and   Dd' = Di − ΔBS.
//   - Effective relative deadlines Dr and Dd, obtained per message arrival
//     by subtracting the observed publisher→broker latency ΔPB.
//
// All arithmetic is in time.Duration. A best-effort topic (Li = ∞) has an
// effectively infinite replication deadline, represented by NoDeadline.
package timing

import (
	"fmt"
	"time"

	"repro/internal/spec"
)

// NoDeadline represents an unbounded (infinitely late) deadline, used for
// the replication deadline of best-effort topics.
const NoDeadline = time.Duration(1<<63 - 1)

// Params carries the deployment-level timing parameters of the model
// (§III-A, §III-B). All are non-negative durations.
type Params struct {
	// DeltaPB is the publisher→Primary one-way latency ΔPB. In the pseudo
	// deadline computation it is zero; per-arrival it is observed.
	DeltaPB time.Duration
	// DeltaBSEdge is the broker→subscriber latency ΔBS for edge subscribers.
	DeltaBSEdge time.Duration
	// DeltaBSCloud is ΔBS for cloud subscribers. The paper recommends a
	// measured lower bound so that selective replication stays safe under
	// cloud-latency variation (§III-D-5).
	DeltaBSCloud time.Duration
	// DeltaBB is the Primary→Backup latency ΔBB.
	DeltaBB time.Duration
	// Failover is x: from Primary crash until the publisher has redirected
	// its traffic to the Backup.
	Failover time.Duration
}

// Validate rejects negative parameters.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"DeltaPB", p.DeltaPB},
		{"DeltaBSEdge", p.DeltaBSEdge},
		{"DeltaBSCloud", p.DeltaBSCloud},
		{"DeltaBB", p.DeltaBB},
		{"Failover", p.Failover},
	} {
		if f.d < 0 {
			return fmt.Errorf("timing: %s = %v must be non-negative", f.name, f.d)
		}
	}
	return nil
}

// PaperParams returns the parameter values the paper uses in its §III-D
// worked example: ΔBS = 1 ms within the edge and 20 ms to the cloud,
// ΔBB = 0.05 ms, x = 50 ms.
func PaperParams() Params {
	return Params{
		DeltaBSEdge:  1 * time.Millisecond,
		DeltaBSCloud: 20 * time.Millisecond,
		DeltaBB:      50 * time.Microsecond,
		Failover:     50 * time.Millisecond,
	}
}

// DeltaBS returns the broker→subscriber latency for the topic's destination.
func (p Params) DeltaBS(dest spec.Destination) time.Duration {
	if dest == spec.DestCloud {
		return p.DeltaBSCloud
	}
	return p.DeltaBSEdge
}

// ReplicationPseudoDeadline returns Dr' = (Ni+Li)·Ti − ΔBB − x, the
// configuration-time replication deadline of Lemma 1 before subtracting the
// per-arrival ΔPB. Best-effort topics return NoDeadline.
func ReplicationPseudoDeadline(t spec.Topic, p Params) time.Duration {
	if t.BestEffort() {
		return NoDeadline
	}
	horizon := mulDuration(t.Period, t.Retention+t.LossTolerance)
	return horizon - p.DeltaBB - p.Failover
}

// DispatchPseudoDeadline returns Dd' = Di − ΔBS for the topic's destination
// (Lemma 2 before subtracting the per-arrival ΔPB).
func DispatchPseudoDeadline(t spec.Topic, p Params) time.Duration {
	return t.Deadline - p.DeltaBS(t.Destination)
}

// ReplicationDeadline returns the full Lemma 1 bound
// Dr = (Ni+Li)·Ti − ΔPB − ΔBB − x using p.DeltaPB.
func ReplicationDeadline(t spec.Topic, p Params) time.Duration {
	d := ReplicationPseudoDeadline(t, p)
	if d == NoDeadline {
		return NoDeadline
	}
	return d - p.DeltaPB
}

// DispatchDeadline returns the full Lemma 2 bound Dd = Di − ΔPB − ΔBS.
func DispatchDeadline(t spec.Topic, p Params) time.Duration {
	return DispatchPseudoDeadline(t, p) - p.DeltaPB
}

// NeedsReplication applies Proposition 1: replication of a topic may be
// suppressed when the system meets the dispatch deadline and Dd ≤ Dr;
// equivalently, replication is needed iff
//
//	x + ΔBB − ΔBS > (Ni+Li)·Ti − Di.
//
// Best-effort topics never need replication.
func NeedsReplication(t spec.Topic, p Params) bool {
	if t.BestEffort() {
		return false
	}
	lhs := p.Failover + p.DeltaBB - p.DeltaBS(t.Destination)
	rhs := mulDuration(t.Period, t.Retention+t.LossTolerance) - t.Deadline
	return lhs > rhs
}

// Admissible reports the §III-D-1 admission test: both Dr ≥ 0 and Dd ≥ 0
// must hold. A topic that fails admission cannot have its loss-tolerance or
// latency contract honored under the model, no matter the schedule.
func Admissible(t spec.Topic, p Params) error {
	if dd := DispatchDeadline(t, p); dd < 0 {
		return fmt.Errorf("timing: topic %d inadmissible: dispatch deadline %v < 0 (Di=%v too tight for ΔPB+ΔBS)", t.ID, dd, t.Deadline)
	}
	if dr := ReplicationDeadline(t, p); dr != NoDeadline && dr < 0 {
		return fmt.Errorf("timing: topic %d inadmissible: replication deadline %v < 0 (increase Ni or Li)", t.ID, dr)
	}
	return nil
}

// MinRetention returns the smallest Ni that makes the topic admissible
// (Dr ≥ 0) given its Li, Ti and the parameters, as listed in Table 2's
// fifth column. Best-effort topics need no retention.
func MinRetention(t spec.Topic, p Params) int {
	if t.BestEffort() {
		return 0
	}
	need := p.DeltaPB + p.DeltaBB + p.Failover
	// Smallest Ni with (Ni+Li)·Ti ≥ need.
	k := int((need + t.Period - 1) / t.Period) // ceil(need/Ti)
	ni := k - t.LossTolerance
	if ni < 0 {
		ni = 0
	}
	return ni
}

// Bounds couples both effective relative deadlines of a topic.
type Bounds struct {
	Dispatch    time.Duration
	Replication time.Duration
	// Replicate is the Proposition 1 verdict: false means replication can be
	// suppressed without violating the loss-tolerance contract.
	Replicate bool
}

// Compute returns the per-topic bounds for the given parameters.
func Compute(t spec.Topic, p Params) Bounds {
	return Bounds{
		Dispatch:    DispatchDeadline(t, p),
		Replication: ReplicationDeadline(t, p),
		Replicate:   NeedsReplication(t, p),
	}
}

// mulDuration multiplies a duration by a possibly huge count, saturating at
// NoDeadline instead of overflowing (Li = LossUnbounded would overflow).
func mulDuration(d time.Duration, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	if d > 0 && time.Duration(n) > NoDeadline/d {
		return NoDeadline
	}
	return d * time.Duration(n)
}
