package timing

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/spec"
)

func ms(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

func paperTopics() []spec.Topic {
	cats := spec.Table2()
	tops := make([]spec.Topic, len(cats))
	for i, c := range cats {
		tops[i] = c.Stamp(spec.TopicID(i), spec.PayloadSize)
	}
	return tops
}

func TestPaperDeadlineValues(t *testing.T) {
	p := PaperParams()
	tops := paperTopics()
	tests := []struct {
		cat int
		dd  time.Duration
		dr  time.Duration
	}{
		{0, ms(49), ms(49.95)},
		{1, ms(49), ms(99.95)},
		{2, ms(99), ms(49.95)},
		{3, ms(99), ms(249.95)},
		{4, ms(99), NoDeadline},
		{5, ms(480), ms(449.95)},
	}
	for _, tc := range tests {
		if got := DispatchDeadline(tops[tc.cat], p); got != tc.dd {
			t.Errorf("cat %d: Dd = %v, want %v", tc.cat, got, tc.dd)
		}
		if got := ReplicationDeadline(tops[tc.cat], p); got != tc.dr {
			t.Errorf("cat %d: Dr = %v, want %v", tc.cat, got, tc.dr)
		}
	}
}

// TestPaperDeadlineOrdering reproduces the §III-D-2 worked example:
// Dd0 = Dd1 < Dr0 = Dr2 < Dd2 = Dd3 = Dd4 < Dr1 < Dr3 < Dr5 < Dd5.
func TestPaperDeadlineOrdering(t *testing.T) {
	p := PaperParams()
	tops := paperTopics()
	dd := func(c int) time.Duration { return DispatchDeadline(tops[c], p) }
	dr := func(c int) time.Duration { return ReplicationDeadline(tops[c], p) }

	if dd(0) != dd(1) {
		t.Errorf("Dd0 %v != Dd1 %v", dd(0), dd(1))
	}
	if dr(0) != dr(2) {
		t.Errorf("Dr0 %v != Dr2 %v", dr(0), dr(2))
	}
	if dd(2) != dd(3) || dd(3) != dd(4) {
		t.Errorf("Dd2..4 not equal: %v %v %v", dd(2), dd(3), dd(4))
	}
	chain := []time.Duration{dd(0), dr(0), dd(2), dr(1), dr(3), dr(5), dd(5)}
	for i := 1; i < len(chain); i++ {
		if chain[i-1] >= chain[i] {
			t.Errorf("ordering violated at link %d: %v >= %v", i, chain[i-1], chain[i])
		}
	}
}

// TestPaperSelectiveReplication reproduces §III-D-2's verdicts: replication
// can be removed for categories 0, 1, and 3 (and 4 is best-effort), and is
// needed only for categories 2 and 5.
func TestPaperSelectiveReplication(t *testing.T) {
	p := PaperParams()
	want := map[int]bool{0: false, 1: false, 2: true, 3: false, 4: false, 5: true}
	for _, top := range paperTopics() {
		if got := NeedsReplication(top, p); got != want[top.Category] {
			t.Errorf("category %d: NeedsReplication = %v, want %v", top.Category, got, want[top.Category])
		}
	}
}

// TestRetentionBoostRemovesReplication reproduces §III-D-3: raising Ni by
// one for categories 2 and 5 removes their replication need too (FRAME+).
func TestRetentionBoostRemovesReplication(t *testing.T) {
	p := PaperParams()
	for _, cat := range []int{2, 5} {
		top := spec.Table2()[cat].Stamp(0, 16)
		top.Retention++
		if NeedsReplication(top, p) {
			t.Errorf("category %d with Ni+1 still needs replication", cat)
		}
		// And dispatch gains precedence: Dd < Dr.
		if dd, dr := DispatchDeadline(top, p), ReplicationDeadline(top, p); dd >= dr {
			t.Errorf("category %d with Ni+1: Dd %v >= Dr %v", cat, dd, dr)
		}
	}
}

func TestMinRetentionMatchesTable2(t *testing.T) {
	p := PaperParams()
	want := []int{2, 0, 1, 0, 0, 1}
	for i, top := range paperTopics() {
		if got := MinRetention(top, p); got != want[i] {
			t.Errorf("category %d: MinRetention = %d, want %d", i, got, want[i])
		}
	}
}

func TestAdmissible(t *testing.T) {
	p := PaperParams()
	for _, top := range paperTopics() {
		if err := Admissible(top, p); err != nil {
			t.Errorf("category %d inadmissible: %v", top.Category, err)
		}
	}
	// Zero retention with Li=0 is inadmissible: a crash right after arrival
	// loses the message (§III-D-1).
	top := spec.Table2()[0].Stamp(0, 16)
	top.Retention = 0
	if err := Admissible(top, p); err == nil {
		t.Error("cat 0 with Ni=0 admitted; want rejection")
	}
	// A deadline tighter than the network latency is inadmissible.
	top = spec.Table2()[5].Stamp(0, 16)
	top.Deadline = 10 * time.Millisecond // < ΔBS cloud of 20ms
	if err := Admissible(top, p); err == nil {
		t.Error("cloud topic with 10ms deadline admitted; want rejection")
	}
}

func TestRareCriticalMessages(t *testing.T) {
	// §III-D-4, case Di < Ti: rare but time-critical messages modeled with
	// huge Ti, Li=0, Ni>0 — no replication needed if delivery is in time.
	p := PaperParams()
	top := spec.Topic{
		ID: 1, Category: -1, Period: time.Hour, Deadline: 50 * time.Millisecond,
		LossTolerance: 0, Retention: 1, Destination: spec.DestEdge, PayloadSize: 16,
	}
	if NeedsReplication(top, p) {
		t.Error("rare critical topic should not need replication")
	}
	// §III-D-4, case Di > Ti (streaming): replication likely needed unless
	// ΔBS is small. With a cloud destination it is needed.
	stream := spec.Topic{
		ID: 2, Category: -1, Period: 10 * time.Millisecond, Deadline: 40 * time.Millisecond,
		LossTolerance: 0, Retention: 5, Destination: spec.DestCloud, PayloadSize: 16,
	}
	if !NeedsReplication(stream, p) {
		t.Error("streaming topic to cloud should need replication")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Errorf("paper params invalid: %v", err)
	}
	bad := PaperParams()
	bad.Failover = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative failover accepted")
	}
}

func TestDeltaPBShiftsDeadlines(t *testing.T) {
	p := PaperParams()
	top := paperTopics()[0]
	base := Compute(top, p)
	p.DeltaPB = 3 * time.Millisecond
	shifted := Compute(top, p)
	if shifted.Dispatch != base.Dispatch-3*time.Millisecond {
		t.Errorf("dispatch deadline shift: %v -> %v", base.Dispatch, shifted.Dispatch)
	}
	if shifted.Replication != base.Replication-3*time.Millisecond {
		t.Errorf("replication deadline shift: %v -> %v", base.Replication, shifted.Replication)
	}
}

func TestBestEffortNoDeadlineUnaffectedByDeltaPB(t *testing.T) {
	p := PaperParams()
	p.DeltaPB = time.Second
	top := paperTopics()[4]
	if got := ReplicationDeadline(top, p); got != NoDeadline {
		t.Errorf("best-effort Dr = %v, want NoDeadline", got)
	}
}

func TestMulDurationSaturates(t *testing.T) {
	if got := mulDuration(time.Hour, 1<<40); got != NoDeadline {
		t.Errorf("overflowing product = %v, want NoDeadline", got)
	}
	if got := mulDuration(time.Second, 0); got != 0 {
		t.Errorf("zero count product = %v, want 0", got)
	}
}

// lemma1Model simulates the crash scenario of Lemma 1's proof: messages of a
// topic are created every Ti; each message's replica reaches the Backup
// Rr+ΔPB+ΔBB after creation; the Primary crashes at crashAt. The publisher
// detects the crash x later and re-sends its Ni retained messages (and all
// messages created after detection flow to the Backup directly). It returns
// the maximum run of consecutive lost messages.
func lemma1Model(ti, deltaPB, deltaBB, x time.Duration, ni int, rr []time.Duration, crashAt time.Duration) int {
	n := len(rr)
	lost := make([]bool, n)
	detect := crashAt + x
	// Index of the newest message created strictly before detection.
	for j := 0; j < n; j++ {
		created := time.Duration(j) * ti
		arrivedPrimary := created + deltaPB
		if created >= detect {
			continue // sent to Backup directly: safe
		}
		replicaAtBackup := arrivedPrimary + rr[j] + deltaBB
		lost[j] = replicaAtBackup > crashAt // replica reached the Backup in time?
	}
	// Publisher retention: the Ni newest messages created before detection
	// are re-sent and therefore recovered.
	newest := -1
	for j := 0; j < n; j++ {
		if time.Duration(j)*ti < detect {
			newest = j
		}
	}
	for k := 0; k < ni && newest-k >= 0; k++ {
		lost[newest-k] = false
	}
	maxRun, run := 0, 0
	for j := 0; j < n; j++ {
		if lost[j] {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	return maxRun
}

// TestLemma1Property empirically validates Lemma 1: for random admissible
// parameter sets, if every replication job finishes within
// Dr = (Ni+Li)·Ti − ΔPB − ΔBB − x, then no crash time yields more than Li
// consecutive losses.
func TestLemma1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ti := time.Duration(rng.Intn(90)+10) * time.Millisecond
		deltaPB := time.Duration(rng.Intn(3)) * time.Millisecond
		deltaBB := time.Duration(rng.Intn(2)) * time.Millisecond
		x := time.Duration(rng.Intn(60)+1) * time.Millisecond
		li := rng.Intn(4)
		ni := rng.Intn(4)
		top := spec.Topic{
			ID: 0, Period: ti, Deadline: ti, LossTolerance: li, Retention: ni,
			Destination: spec.DestEdge, PayloadSize: 16,
		}
		p := Params{DeltaPB: deltaPB, DeltaBB: deltaBB, Failover: x}
		dr := ReplicationDeadline(top, p)
		if dr < 0 {
			return true // inadmissible: Lemma 1 makes no promise
		}
		const n = 40
		rr := make([]time.Duration, n)
		for j := range rr {
			rr[j] = time.Duration(rng.Int63n(int64(dr) + 1))
		}
		// Sweep crash times across several periods at fine grain.
		horizon := time.Duration(n) * ti
		for crash := time.Duration(0); crash < horizon; crash += ti / 7 {
			if got := lemma1Model(ti, deltaPB, deltaBB, x, ni, rr, crash); got > li {
				t.Logf("seed %d: %d consecutive losses > Li=%d at crash %v (Ti=%v Ni=%d x=%v)",
					seed, got, li, crash, ti, ni, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLemma1Tightness shows the bound is not vacuous: violating Dr by a few
// periods admits crash times that exceed Li consecutive losses.
func TestLemma1Tightness(t *testing.T) {
	ti := 50 * time.Millisecond
	p := Params{Failover: 50 * time.Millisecond}
	top := spec.Topic{Period: ti, Deadline: ti, LossTolerance: 1, Retention: 2,
		Destination: spec.DestEdge, PayloadSize: 16}
	dr := ReplicationDeadline(top, p)
	late := dr + 3*ti // every replication far too slow
	const n = 40
	rr := make([]time.Duration, n)
	for j := range rr {
		rr[j] = late
	}
	violated := false
	for crash := time.Duration(0); crash < time.Duration(n)*ti; crash += ti / 7 {
		if lemma1Model(ti, 0, 0, p.Failover, top.Retention, rr, crash) > top.LossTolerance {
			violated = true
			break
		}
	}
	if !violated {
		t.Error("grossly late replication never exceeded Li; model too lax")
	}
}

// TestLemma2Property: a dispatch finishing within Dd = Di − ΔPB − ΔBS always
// meets the end-to-end deadline, and one finishing later always misses it.
func TestLemma2Property(t *testing.T) {
	f := func(diMs, pbMs, bsMs uint16, slackMs int16) bool {
		di := time.Duration(diMs%1000+1) * time.Millisecond
		pb := time.Duration(pbMs%20) * time.Millisecond
		bs := time.Duration(bsMs%50) * time.Millisecond
		top := spec.Topic{Period: di, Deadline: di, Destination: spec.DestEdge, PayloadSize: 16}
		p := Params{DeltaPB: pb, DeltaBSEdge: bs}
		dd := DispatchDeadline(top, p)
		if dd < 0 {
			return true
		}
		rd := dd + time.Duration(slackMs)*time.Millisecond
		if rd < 0 {
			rd = 0
		}
		endToEnd := pb + rd + bs // tc→tp, tp→td, td→ts
		meets := endToEnd <= di
		if rd <= dd && !meets {
			return false
		}
		if rd > dd && meets {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
