// The cluster routing plane: an epoch-versioned table of shard ownership
// served by a Directory, and a client-side Router that caches it.
//
// The table is tiny (one address pair per shard) and changes rarely — on a
// promotion or an operator resize — so the plane is deliberately a cache
// hierarchy, not a consensus system: the Directory holds the authoritative
// copy, clients work from cached snapshots, and staleness is detected in
// band by the data plane itself (a broker answers a misrouted publish with
// a WrongShard redirect carrying its current epoch). A partitioned
// Directory therefore never stalls traffic: cached routes keep working,
// and the cache catches up when the plane heals.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Table is one epoch's routing state: Shards[i] holds shard i's pair, the
// current Primary first. Epochs start at 1 and bump on every mutation.
type Table struct {
	Epoch  uint64
	Shards []wire.ShardEntry
}

// ShardFor returns the index of the shard owning the topic.
func (t Table) ShardFor(id spec.TopicID) int { return ShardOf(id, len(t.Shards)) }

// clone returns a deep copy (the entries are value types).
func (t Table) clone() Table {
	return Table{Epoch: t.Epoch, Shards: append([]wire.ShardEntry(nil), t.Shards...)}
}

// DirectoryOptions configures the routing-plane endpoint.
type DirectoryOptions struct {
	// ListenAddr is where clients fetch the table.
	ListenAddr string
	// Network supplies the listener.
	Network transport.Network
	// Shards is the initial table (epoch 1): one entry per shard.
	Shards []wire.ShardEntry
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// Directory owns the authoritative routing table and serves it over
// RouteReq/RouteResp. It is the cluster bring-up's bookkeeper, not a data
// path: brokers never proxy through it, and clients only talk to it to
// (re)load their route cache.
type Directory struct {
	log    *slog.Logger
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	mu    sync.Mutex
	table Table
}

// NewDirectory binds the listener and starts serving the initial table at
// epoch 1.
func NewDirectory(opts DirectoryOptions) (*Directory, error) {
	if opts.Network == nil {
		return nil, errors.New("cluster: directory needs a network")
	}
	if len(opts.Shards) == 0 {
		return nil, errors.New("cluster: directory needs at least one shard")
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	ln, err := opts.Network.Listen(opts.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: directory listen: %w", err)
	}
	d := &Directory{
		log:    opts.Logger.With("component", "cluster-directory"),
		ln:     ln,
		closed: make(chan struct{}),
		table:  Table{Epoch: 1, Shards: append([]wire.ShardEntry(nil), opts.Shards...)},
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.acceptLoop()
	}()
	return d, nil
}

// Addr returns the bound listen address.
func (d *Directory) Addr() string { return d.ln.Addr().String() }

// Table returns a snapshot of the current table.
func (d *Directory) Table() Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table.clone()
}

// Epoch returns the current table epoch. Brokers plug this into
// broker.Options.ShardEpoch so WrongShard redirects advertise the epoch a
// refresh would reach.
func (d *Directory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table.Epoch
}

// Promote records an intra-pair fail-over of the shard: the Backup becomes
// Primary, the Backup slot empties (until an operator replaces the lost
// member), the shard's ownership is unchanged, and the epoch bumps.
func (d *Directory) Promote(shard int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard < 0 || shard >= len(d.table.Shards) {
		return fmt.Errorf("cluster: promote: no shard %d in %d-shard table", shard, len(d.table.Shards))
	}
	e := &d.table.Shards[shard]
	if e.Backup == "" {
		return fmt.Errorf("cluster: promote: shard %d has no backup", shard)
	}
	e.Primary, e.Backup = e.Backup, ""
	d.table.Epoch++
	d.log.Info("shard promoted", "shard", shard, "primary", e.Primary, "epoch", d.table.Epoch)
	return nil
}

// SetShards replaces the whole table (an operator resize or repair) and
// bumps the epoch.
func (d *Directory) SetShards(shards []wire.ShardEntry) error {
	if len(shards) == 0 {
		return errors.New("cluster: table needs at least one shard")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.table.Shards = append([]wire.ShardEntry(nil), shards...)
	d.table.Epoch++
	d.log.Info("table replaced", "shards", len(shards), "epoch", d.table.Epoch)
	return nil
}

// Close stops serving.
func (d *Directory) Close() {
	select {
	case <-d.closed:
		return
	default:
		close(d.closed)
	}
	d.ln.Close()
	d.wg.Wait()
}

func (d *Directory) acceptLoop() {
	for {
		nc, err := d.ln.Accept()
		if err != nil {
			return
		}
		conn := transport.NewConn(nc)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			d.serve(conn)
		}()
	}
}

// serve answers RouteReq (and liveness Polls) until the session ends.
func (d *Directory) serve(conn *transport.Conn) {
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TypeRouteReq:
			t := d.Table()
			if err := conn.Send(&wire.Frame{Type: wire.TypeRouteResp, Nonce: f.Nonce, Epoch: t.Epoch, Shards: t.Shards}); err != nil {
				return
			}
		case wire.TypePoll:
			if err := conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce}); err != nil {
				return
			}
		case wire.TypeHello:
			// Session setup; roles are irrelevant to the routing plane.
		default:
			d.log.Warn("unexpected frame on routing plane", "type", f.Type.String())
		}
	}
}

// DefaultFetchTimeout bounds one routing-table fetch when
// RouterOptions.Timeout is zero.
const DefaultFetchTimeout = 2 * time.Second

// RouterOptions configures a client-side route cache.
type RouterOptions struct {
	// DirectoryAddr is the routing-plane endpoint.
	DirectoryAddr string
	// Network supplies dialing.
	Network transport.Network
	// Timeout bounds one fetch; zero means DefaultFetchTimeout.
	Timeout time.Duration
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// Router caches the routing table on behalf of one client process. It
// fetches once at construction and again on Refresh/NoteEpoch; between
// fetches every lookup is local. Router is safe for concurrent use.
type Router struct {
	opts RouterOptions
	log  *slog.Logger

	// fetchMu serializes fetches so a burst of redirects collapses into one
	// round trip; mu guards the cached table only.
	fetchMu sync.Mutex
	mu      sync.Mutex
	table   Table
	nonce   uint64
}

// NewRouter fetches the initial table and returns a ready cache.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Network == nil {
		return nil, errors.New("cluster: router needs a network")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultFetchTimeout
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	r := &Router{opts: opts, log: opts.Logger.With("component", "cluster-router")}
	t, err := r.Refresh()
	if err != nil {
		return nil, err
	}
	// A real Directory never serves an empty table (its constructor and
	// SetShards both refuse one), so an empty first fetch means the address
	// points at something that is not a healthy routing plane.
	if len(t.Shards) == 0 {
		return nil, errors.New("cluster: directory served an empty routing table")
	}
	return r, nil
}

// Table returns the cached snapshot.
func (r *Router) Table() Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table.clone()
}

// Epoch returns the cached table's epoch.
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table.Epoch
}

// NoteEpoch reacts to an epoch observed in band (a WrongShard redirect): if
// it is newer than the cache, refresh. Convergence argument: a redirect
// carries the broker's epoch e; the Directory's epoch is monotone, so the
// refresh fetches a table of epoch ≥ e > cached, and the cache strictly
// advances until no broker observes a newer epoch than the client holds.
func (r *Router) NoteEpoch(e uint64) error {
	r.mu.Lock()
	cur := r.table.Epoch
	r.mu.Unlock()
	if e <= cur {
		return nil
	}
	_, err := r.Refresh()
	return err
}

// Refresh fetches the table and installs it if newer than the cache,
// returning the (possibly unchanged) cached table. A fetch error leaves
// the cache intact — stale routes beat no routes while the plane is
// partitioned — and so does a table with no shards: an empty table routes
// nothing, so installing one would erase working routes for the same
// reason Publisher.rehome refuses to act on it.
func (r *Router) Refresh() (Table, error) {
	r.fetchMu.Lock()
	defer r.fetchMu.Unlock()
	t, err := r.fetch()
	if err != nil {
		return r.Table(), err
	}
	r.mu.Lock()
	if t.Epoch > r.table.Epoch {
		if len(t.Shards) == 0 {
			r.log.Warn("refusing empty routing table", "epoch", t.Epoch)
		} else {
			r.table = t
		}
	}
	out := r.table.clone()
	r.mu.Unlock()
	return out, nil
}

// fetch performs one RouteReq round trip on a fresh connection.
func (r *Router) fetch() (Table, error) {
	nc, err := r.opts.Network.Dial(r.opts.DirectoryAddr)
	if err != nil {
		return Table{}, fmt.Errorf("cluster: dial directory: %w", err)
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	r.mu.Lock()
	r.nonce++
	nonce := r.nonce
	r.mu.Unlock()
	if err := conn.Send(&wire.Frame{Type: wire.TypeRouteReq, Nonce: nonce}); err != nil {
		return Table{}, fmt.Errorf("cluster: route request: %w", err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(r.opts.Timeout)); err != nil {
		return Table{}, err
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			return Table{}, fmt.Errorf("cluster: route response: %w", err)
		}
		if f.Type != wire.TypeRouteResp || f.Nonce != nonce {
			continue // stray frame on a fresh conn; keep waiting for ours
		}
		return Table{Epoch: f.Epoch, Shards: f.Shards}, nil
	}
}
