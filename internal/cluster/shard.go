// Package cluster scales FRAME horizontally: N independent Primary+Backup
// broker pairs (shards), a consistent-hash assignment of topics to shards,
// and an epoch-versioned routing table that clients fetch, cache, and
// refresh on WrongShard redirects.
//
// Each shard remains exactly the paper's unit of analysis — one
// Primary+Backup pair running the full §IV state machine — so Lemmas 1–2
// and Proposition 1 hold per shard with that shard's workload substituted
// for the global one: sharding partitions the topic set, never a topic's
// replication or dispatch path. Intra-pair fail-over is likewise unchanged
// (§III-B): a promoted Backup keeps its shard, and the routing plane only
// records the new roles by bumping the table epoch.
//
// The design follows the clustering pattern of MigratoryData (independent
// pairs behind a thin routing layer) with FogMQ's argument that shard
// ownership must survive broker churn (see PAPERS.md).
package cluster

import (
	"repro/internal/spec"
)

// ShardOf maps a topic to one of n shards (0-based) using Lamping &
// Veach's jump consistent hash over a pre-scrambled key. Jump hashing gives
// the two properties the routing plane's contract depends on:
//
//   - balance: topics spread uniformly across the n shards;
//   - monotonicity: growing the cluster from n to n+1 shards moves topics
//     only onto the new shard n — in expectation T/(n+1) of T topics, and
//     never more than ceil(T/n) in this codebase's workloads (property
//     tested) — so a resize re-homes the minimum share of the key space.
//
// TopicIDs are small dense integers, so they are first run through a
// splitmix64-style finalizer; feeding sequential IDs straight into the
// jump-hash LCG would correlate consecutive topics' placements.
func ShardOf(id spec.TopicID, n int) int {
	if n <= 1 {
		return 0
	}
	key := mix64(uint64(id))
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix64 is the splitmix64 output finalizer: a bijective scrambler whose
// high bits depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Partition splits topics into n per-shard groups by ShardOf, preserving
// the input order within each group.
func Partition(topics []spec.Topic, n int) [][]spec.Topic {
	if n < 1 {
		n = 1
	}
	parts := make([][]spec.Topic, n)
	for _, t := range topics {
		s := ShardOf(t.ID, n)
		parts[s] = append(parts[s], t)
	}
	return parts
}
