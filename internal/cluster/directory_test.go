package cluster

import (
	"log/slog"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func threePairs() []wire.ShardEntry {
	return []wire.ShardEntry{
		{Primary: "p0", Backup: "b0"},
		{Primary: "p1", Backup: "b1"},
		{Primary: "p2", Backup: "b2"},
	}
}

func startDirectory(t *testing.T, n transport.Network, entries []wire.ShardEntry) *Directory {
	t.Helper()
	dir, err := NewDirectory(DirectoryOptions{
		ListenAddr: NodeRouting, Network: n, Shards: entries, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Close)
	return dir
}

func newTestRouter(t *testing.T, n transport.Network, addr string) *Router {
	t.Helper()
	r, err := NewRouter(RouterOptions{
		DirectoryAddr: addr, Network: n, Timeout: 2 * time.Second, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDirectoryServesTable(t *testing.T) {
	n := transport.NewMem()
	dir := startDirectory(t, n, threePairs())
	r := newTestRouter(t, n, dir.Addr())
	tab := r.Table()
	if tab.Epoch != 1 || len(tab.Shards) != 3 {
		t.Fatalf("initial table: epoch %d, %d shards; want 1, 3", tab.Epoch, len(tab.Shards))
	}
	if tab.Shards[1].Primary != "p1" || tab.Shards[1].Backup != "b1" {
		t.Errorf("shard 1 = %+v", tab.Shards[1])
	}
}

func TestDirectoryPromoteSwapsPairAndBumpsEpoch(t *testing.T) {
	n := transport.NewMem()
	dir := startDirectory(t, n, threePairs())
	if err := dir.Promote(1); err != nil {
		t.Fatal(err)
	}
	tab := dir.Table()
	if tab.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", tab.Epoch)
	}
	if e := tab.Shards[1]; e.Primary != "b1" || e.Backup != "" {
		t.Errorf("promoted entry = %+v, want {b1 \"\"}", e)
	}
	// The shard's ownership is unchanged: same index, same topic partition.
	if tab.Shards[0].Primary != "p0" || tab.Shards[2].Primary != "p2" {
		t.Error("promotion leaked into other shards")
	}
	// A pair without a backup cannot promote again.
	if err := dir.Promote(1); err == nil {
		t.Error("double promotion accepted")
	}
	if err := dir.Promote(7); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

func TestRouterNoteEpochRefreshesOnNewerOnly(t *testing.T) {
	n := transport.NewMem()
	dir := startDirectory(t, n, threePairs())
	r := newTestRouter(t, n, dir.Addr())
	if err := dir.Promote(0); err != nil {
		t.Fatal(err)
	}
	// Stale or equal epochs must not trigger a fetch-visible change.
	if err := r.NoteEpoch(1); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Errorf("epoch after stale note = %d, want 1", r.Epoch())
	}
	// A newer epoch (as a WrongShard redirect would carry) converges.
	if err := r.NoteEpoch(2); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 2 {
		t.Errorf("epoch after note = %d, want 2", r.Epoch())
	}
	if e := r.Table().Shards[0]; e.Primary != "b0" {
		t.Errorf("refreshed entry = %+v", e)
	}
}

// TestRouterConvergenceProperty: from any reachable epoch N, a redirect
// carrying epoch N+1 (or any newer epoch) converges the cache to the
// directory's table — across random sequences of promotions and resizes.
func TestRouterConvergenceProperty(t *testing.T) {
	n := transport.NewMem()
	dir := startDirectory(t, n, threePairs())
	r := newTestRouter(t, n, dir.Addr())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := rng.Intn(4) + 1
		for i := 0; i < steps; i++ {
			if rng.Intn(2) == 0 {
				// Resize/repair: replace the table (restores backups too).
				size := rng.Intn(4) + 1
				entries := make([]wire.ShardEntry, size)
				for s := range entries {
					entries[s] = wire.ShardEntry{Primary: "p", Backup: "b"}
				}
				if err := dir.SetShards(entries); err != nil {
					return false
				}
			} else {
				_ = dir.Promote(rng.Intn(len(dir.Table().Shards))) // may fail on empty backup; epoch then unchanged
			}
		}
		want := dir.Table()
		// The cache may be arbitrarily stale (epoch N ≤ want.Epoch); one
		// in-band redirect with the broker's epoch must converge it.
		if err := r.NoteEpoch(want.Epoch); err != nil {
			return false
		}
		got := r.Table()
		if got.Epoch != want.Epoch || len(got.Shards) != len(want.Shards) {
			return false
		}
		for i := range got.Shards {
			if got.Shards[i] != want.Shards[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRouterSurvivesDirectoryOutage(t *testing.T) {
	n := transport.NewMem()
	dir, err := NewDirectory(DirectoryOptions{
		ListenAddr: NodeRouting, Network: n, Shards: threePairs(), Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRouter(t, n, dir.Addr())
	dir.Close()
	// Refresh fails but the cache — and with it the data plane — survives.
	if _, err := r.Refresh(); err == nil {
		t.Error("refresh against a dead directory succeeded")
	}
	tab := r.Table()
	if tab.Epoch != 1 || len(tab.Shards) != 3 {
		t.Errorf("cached table lost during outage: %+v", tab)
	}
}
