package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func TestShardOfBounds(t *testing.T) {
	f := func(id uint32, n uint8) bool {
		shards := int(n%16) + 1
		s := ShardOf(spec.TopicID(id), shards)
		return s >= 0 && s < shards
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if ShardOf(5, 0) != 0 || ShardOf(5, 1) != 0 || ShardOf(5, -3) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

func TestShardOfDeterministic(t *testing.T) {
	for id := spec.TopicID(0); id < 1000; id++ {
		if ShardOf(id, 7) != ShardOf(id, 7) {
			t.Fatalf("ShardOf(%d, 7) not deterministic", id)
		}
	}
}

// TestShardOfBalance: the paper's workload sizes spread near-uniformly.
func TestShardOfBalance(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		for _, total := range spec.WorkloadSizes {
			counts := make([]int, shards)
			for id := 0; id < total; id++ {
				counts[ShardOf(spec.TopicID(id), shards)]++
			}
			mean := float64(total) / float64(shards)
			for s, c := range counts {
				if dev := math.Abs(float64(c)-mean) / mean; dev > 0.25 {
					t.Errorf("shards=%d total=%d: shard %d holds %d topics (mean %.0f, deviation %.0f%%)",
						shards, total, s, c, mean, dev*100)
				}
			}
		}
	}
}

// TestShardOfBoundedReassignment: growing n → n+1 shards moves at most
// ceil(T/n) topics, and every moved topic lands on the new shard n (jump
// hashing's monotonicity) — the satellite property the routing plane's
// resize story depends on.
func TestShardOfBoundedReassignment(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, total := range spec.WorkloadSizes {
			moved := 0
			for id := 0; id < total; id++ {
				before := ShardOf(spec.TopicID(id), n)
				after := ShardOf(spec.TopicID(id), n+1)
				if before == after {
					continue
				}
				moved++
				if after != n {
					t.Fatalf("n=%d topic %d moved %d→%d, not onto the new shard %d", n, id, before, after, n)
				}
			}
			bound := (total + n - 1) / n // ceil(T/n)
			if moved > bound {
				t.Errorf("n=%d→%d total=%d: %d topics moved, bound ceil(T/n)=%d", n, n+1, total, moved, bound)
			}
			if moved == 0 && n < total {
				t.Errorf("n=%d→%d total=%d: no topics moved — new shard would stay empty", n, n+1, total)
			}
		}
	}
}

func TestPartitionCoversAllTopicsOnce(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	parts := Partition(w.Topics, 4)
	seen := make(map[spec.TopicID]bool)
	for s, part := range parts {
		for _, tp := range part {
			if seen[tp.ID] {
				t.Fatalf("topic %d in two partitions", tp.ID)
			}
			seen[tp.ID] = true
			if ShardOf(tp.ID, 4) != s {
				t.Fatalf("topic %d in partition %d, ShardOf says %d", tp.ID, s, ShardOf(tp.ID, 4))
			}
		}
	}
	if len(seen) != len(w.Topics) {
		t.Fatalf("partitions cover %d of %d topics", len(seen), len(w.Topics))
	}
}
