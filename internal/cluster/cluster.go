// Cluster bring-up: N Primary+Backup pairs plus the routing Directory,
// wired so that a pair's promotion is reflected in the table.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"repro/internal/broker"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Node names used for symbolic (Mem / fault-injected) addressing. With a
// faultinject.Network each broker gets its own per-node view so link faults
// can single it out.
const NodeRouting = "routing"

// PrimaryNode returns shard i's Primary node name.
func PrimaryNode(i int) string { return fmt.Sprintf("shard%d-primary", i) }

// BackupNode returns shard i's Backup node name.
func BackupNode(i int) string { return fmt.Sprintf("shard%d-backup", i) }

// Config describes a cluster to bring up.
type Config struct {
	// Shards is the number of Primary+Backup pairs.
	Shards int
	// Topics is the full topic set; each shard registers only its ShardOf
	// partition, so a misrouted publish is an unknown topic at the broker
	// and triggers the WrongShard redirect.
	Topics []spec.Topic
	// Engine is the per-broker core configuration.
	Engine core.Config
	// Network supplies listen/dial for every node when NodeNetwork is nil.
	Network transport.Network
	// NodeNetwork, when non-nil, supplies a per-node network view (e.g.
	// faultinject.Network.Node) keyed by PrimaryNode/BackupNode/NodeRouting.
	NodeNetwork func(node string) transport.Network
	// Mem selects symbolic node-name listen addresses (in-process Mem
	// transport); otherwise brokers bind TCP loopback ephemeral ports.
	Mem bool
	// Clock is the shared timebase.
	Clock clocksync.Clock
	// Workers is the per-broker delivery pool size (broker.Options.Workers).
	Workers int
	// Detector tunes each pair's failure detector.
	Detector failover.Config
	// EgressDepth is passed through to every broker.
	EgressDepth int
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// Pair is one running shard.
type Pair struct {
	Index   int
	Primary *broker.Broker
	Backup  *broker.Broker
	// Topics is the shard's partition of the cluster topic set.
	Topics []spec.Topic
}

// Cluster is a running set of shards plus their routing Directory.
type Cluster struct {
	Dir   *Directory
	Pairs []*Pair

	watchDone chan struct{}
	wg        sync.WaitGroup
	stopOnce  sync.Once
}

// New builds and starts the cluster: one broker pair per shard (each
// registered with only its topic partition and publishing the Directory's
// epoch in WrongShard redirects), the Directory serving the initial table,
// and one watcher per shard that records a Backup's promotion in the table.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("cluster: need at least one shard")
	}
	if cfg.Clock == nil {
		return nil, errors.New("cluster: need a clock")
	}
	if cfg.Network == nil && cfg.NodeNetwork == nil {
		return nil, errors.New("cluster: need a network")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	netFor := cfg.NodeNetwork
	if netFor == nil {
		netFor = func(string) transport.Network { return cfg.Network }
	}
	listenFor := func(node string) string {
		if cfg.Mem {
			return node
		}
		return "127.0.0.1:0"
	}

	c := &Cluster{watchDone: make(chan struct{})}
	parts := Partition(cfg.Topics, cfg.Shards)
	entries := make([]wire.ShardEntry, cfg.Shards)
	// The brokers' ShardEpoch hooks read through this pointer; it is set
	// before any broker starts serving.
	var dir *Directory
	epoch := func() uint64 {
		if dir == nil {
			return 0
		}
		return dir.Epoch()
	}
	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		bk, err := broker.New(broker.Options{
			Engine:      cfg.Engine,
			Role:        broker.RoleBackup,
			ListenAddr:  listenFor(BackupNode(i)),
			PeerAddr:    "pending", // fixed up once the Primary binds
			Network:     netFor(BackupNode(i)),
			Clock:       cfg.Clock,
			Workers:     cfg.Workers,
			Detector:    cfg.Detector,
			Topics:      parts[i],
			Logger:      cfg.Logger,
			EgressDepth: cfg.EgressDepth,
			ShardEpoch:  epoch,
		})
		if err != nil {
			return fail(fmt.Errorf("cluster: shard %d backup: %w", i, err))
		}
		pr, err := broker.New(broker.Options{
			Engine:      cfg.Engine,
			Role:        broker.RolePrimary,
			ListenAddr:  listenFor(PrimaryNode(i)),
			PeerAddr:    bk.Addr(),
			Network:     netFor(PrimaryNode(i)),
			Clock:       cfg.Clock,
			Workers:     cfg.Workers,
			Detector:    cfg.Detector,
			Topics:      parts[i],
			Logger:      cfg.Logger,
			EgressDepth: cfg.EgressDepth,
			ShardEpoch:  epoch,
		})
		if err != nil {
			bk.Stop()
			return fail(fmt.Errorf("cluster: shard %d primary: %w", i, err))
		}
		bk.SetPeerAddr(pr.Addr())
		c.Pairs = append(c.Pairs, &Pair{Index: i, Primary: pr, Backup: bk, Topics: parts[i]})
		entries[i] = wire.ShardEntry{Primary: pr.Addr(), Backup: bk.Addr()}
	}
	var err error
	dir, err = NewDirectory(DirectoryOptions{
		ListenAddr: listenFor(NodeRouting),
		Network:    netFor(NodeRouting),
		Shards:     entries,
		Logger:     cfg.Logger,
	})
	if err != nil {
		return fail(fmt.Errorf("cluster: directory: %w", err))
	}
	c.Dir = dir
	for _, p := range c.Pairs {
		p.Backup.Start()
		p.Primary.Start()
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			select {
			case <-p.Backup.Promoted():
				if err := dir.Promote(p.Index); err != nil {
					cfg.Logger.Warn("promotion not recorded", "shard", p.Index, "err", err)
				}
			case <-c.watchDone:
			}
		}()
	}
	return c, nil
}

// Stop tears the cluster down. Brokers already stopped by a chaos script
// are skipped by the caller tracking them; Stop itself stops every broker
// it still owns and is idempotent.
func (c *Cluster) Stop() { c.StopExcept(nil) }

// StopExcept stops the cluster, skipping brokers in except (already
// crashed by a scenario; stopping them again would double-close).
func (c *Cluster) StopExcept(except map[*broker.Broker]bool) {
	c.stopOnce.Do(func() {
		close(c.watchDone)
		c.wg.Wait()
		if c.Dir != nil {
			c.Dir.Close()
		}
		for _, p := range c.Pairs {
			if !except[p.Primary] {
				p.Primary.Stop()
			}
			if !except[p.Backup] {
				p.Backup.Stop()
			}
		}
	})
}
