// Cluster-aware endpoints: a Publisher that routes each topic to its
// owning shard and re-homes topics when the routing table moves them, and
// a Subscriber that aggregates deliveries across every shard.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clocksync"
	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PublisherOptions configures a sharded publisher.
type PublisherOptions struct {
	// Name identifies the publisher in Hello frames and logs.
	Name string
	// Topics are the topics this proxy owns, cluster-wide.
	Topics []spec.Topic
	// Router supplies and refreshes the routing table.
	Router *Router
	// Network supplies dialing.
	Network transport.Network
	// Clock is the synchronized timebase.
	Clock clocksync.Clock
	// Detector tunes each per-pair publisher's crash detector.
	Detector failover.Config
	// RefreshInterval, when positive, polls the Directory on this period so
	// the cache converges even without in-band redirects (e.g. a promotion
	// the client never trips over). Zero disables polling; redirects still
	// refresh.
	RefreshInterval time.Duration
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// pairKey identifies a broker pair by the addresses a client dials — the
// unit a per-pair client.Publisher is bound to.
func pairKey(e wire.ShardEntry) string { return e.Primary + "|" + e.Backup }

// Publisher routes topics across the cluster: one client.Publisher per
// broker pair the cached table points at, with topics moving between them
// (carrying sequence numbers and retained messages, §III-B style) whenever
// a refreshed table changes their owner. Safe for concurrent use.
type Publisher struct {
	opts   PublisherOptions
	log    *slog.Logger
	router *Router

	stop chan struct{}
	kick chan struct{} // capacity 1: a refresh is pending
	wg   sync.WaitGroup

	redirects atomic.Uint64 // WrongShard frames observed

	mu       sync.Mutex
	table    Table
	topics   map[spec.TopicID]spec.Topic
	pubs     map[string]*client.Publisher // by pairKey
	topicPub map[spec.TopicID]string      // topic -> pairKey currently carrying it
	closed   bool

	rehomed uint64 // topic moves executed
}

// NewPublisher builds the per-pair publishers for the router's current
// table and starts the optional refresh poller.
func NewPublisher(opts PublisherOptions) (*Publisher, error) {
	if opts.Router == nil || opts.Network == nil || opts.Clock == nil {
		return nil, errors.New("cluster: publisher needs router, network, and clock")
	}
	if len(opts.Topics) == 0 {
		return nil, errors.New("cluster: publisher needs at least one topic")
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	p := &Publisher{
		opts:     opts,
		log:      opts.Logger.With("cluster-publisher", opts.Name),
		router:   opts.Router,
		stop:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
		topics:   make(map[spec.TopicID]spec.Topic, len(opts.Topics)),
		pubs:     make(map[string]*client.Publisher),
		topicPub: make(map[spec.TopicID]string, len(opts.Topics)),
	}
	for _, t := range opts.Topics {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		p.topics[t.ID] = t
	}
	table := opts.Router.Table()
	if len(table.Shards) == 0 {
		return nil, errors.New("cluster: empty routing table")
	}
	p.mu.Lock()
	p.table = table
	// Group topics by owning pair and open one publisher per pair.
	byKey := make(map[string][]spec.Topic)
	for _, t := range opts.Topics {
		e := table.Shards[table.ShardFor(t.ID)]
		byKey[pairKey(e)] = append(byKey[pairKey(e)], t)
	}
	for _, t := range opts.Topics {
		p.topicPub[t.ID] = pairKey(table.Shards[table.ShardFor(t.ID)])
	}
	for key, group := range byKey {
		pub, err := p.openPubLocked(key, group)
		if err != nil {
			p.mu.Unlock()
			p.Close()
			return nil, err
		}
		p.pubs[key] = pub
	}
	p.mu.Unlock()
	// The refresher: the only goroutine that fetches tables and re-homes
	// topics in response to redirects. Keeping it off the per-pair receive
	// goroutines means the recv loops always drain — rehome does network
	// I/O under p.mu, and a recv callback blocking on that mutex would
	// jam the very pipes rehome needs.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.kick:
				// Always fetch, even when the advertised epoch is not newer
				// than the cache: a redirect at our own epoch means the route
				// we used is wrong regardless — the Directory may have moved
				// past the broker's view. Refresh installs only if the
				// fetched table is genuinely newer.
				t, err := p.router.Refresh()
				if err != nil {
					p.log.Warn("route refresh after redirect failed", "err", err)
					continue
				}
				p.rehome(t)
			case <-p.stop:
				return
			}
		}
	}()
	if opts.RefreshInterval > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ticker := time.NewTicker(opts.RefreshInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if t, err := p.router.Refresh(); err == nil {
						p.rehome(t)
					}
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p, nil
}

// splitPairKey recovers the address tuple from a pairKey.
func splitPairKey(key string) wire.ShardEntry {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '|' {
			return wire.ShardEntry{Primary: key[:i], Backup: key[i+1:]}
		}
	}
	return wire.ShardEntry{Primary: key}
}

// pairsOverlap reports whether two pair keys share a broker address — the
// signature of an intra-pair promotion rather than a shard move.
func pairsOverlap(a, b string) bool {
	ea, eb := splitPairKey(a), splitPairKey(b)
	for _, x := range []string{ea.Primary, ea.Backup} {
		if x == "" {
			continue
		}
		if x == eb.Primary || x == eb.Backup {
			return true
		}
	}
	return false
}

// openPubLocked dials one pair. Callers hold p.mu.
func (p *Publisher) openPubLocked(key string, topics []spec.Topic) (*client.Publisher, error) {
	e := splitPairKey(key)
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name:         p.opts.Name,
		Topics:       topics,
		PrimaryAddr:  e.Primary,
		BackupAddr:   e.Backup,
		Network:      p.opts.Network,
		Clock:        p.opts.Clock,
		Detector:     p.opts.Detector,
		Logger:       p.opts.Logger,
		OnWrongShard: p.onWrongShard,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: dial pair %s: %w", e.Primary, err)
	}
	return pub, nil
}

// onWrongShard runs on a per-pair receive goroutine: a broker told us our
// table is stale. It must never block — a stalled recv loop stops
// draining broker replies (including the redirects themselves) and
// deadlocks the synchronous transports — so it only counts the redirect
// and kicks the refresher. The rejected message is covered by the topic's
// retained ring: AdoptTopic re-sends it to the right shard, and
// subscriber dedup absorbs any overlap.
func (p *Publisher) onWrongShard(spec.TopicID, uint64) {
	p.redirects.Add(1)
	select {
	case p.kick <- struct{}{}:
	default: // a refresh is already pending; it will see the latest table
	}
}

// rehome moves topics whose owning pair changed under the new table.
func (p *Publisher) rehome(t Table) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || t.Epoch <= p.table.Epoch || len(t.Shards) == 0 {
		if t.Epoch > p.table.Epoch {
			p.log.Warn("refusing empty routing table", "epoch", t.Epoch)
		}
		return
	}
	p.table = t
	// First pass: intra-pair promotions re-key the pair's publisher in
	// place. The underlying client already fails over to the surviving
	// member on its own detector; a Drop/Adopt resend here would interleave
	// a duplicate low-sequence stream with its live traffic. Re-keying is
	// sound only when every topic on the old pair moves to the same new
	// pair and the pairs share a member — anything else falls through to
	// the Drop/Adopt path below.
	wants := make(map[spec.TopicID]string, len(p.topics))
	byCur := make(map[string][]spec.TopicID)
	for id := range p.topics {
		wants[id] = pairKey(t.Shards[t.ShardFor(id)])
		byCur[p.topicPub[id]] = append(byCur[p.topicPub[id]], id)
	}
	for cur, ids := range byCur {
		want := wants[ids[0]]
		if want == cur || p.pubs[cur] == nil || p.pubs[want] != nil || !pairsOverlap(cur, want) {
			continue
		}
		uniform := true
		for _, id := range ids {
			if wants[id] != want {
				uniform = false
				break
			}
		}
		if !uniform {
			continue
		}
		p.pubs[want] = p.pubs[cur]
		delete(p.pubs, cur)
		for _, id := range ids {
			p.topicPub[id] = want
		}
		p.log.Info("pair re-keyed after promotion", "from", cur, "to", want, "epoch", t.Epoch)
	}
	for id, topic := range p.topics {
		want := wants[id]
		cur := p.topicPub[id]
		if want == cur {
			continue
		}
		dst, ok := p.pubs[want]
		if !ok {
			var err error
			if dst, err = p.openPubLocked(want, nil); err != nil {
				p.log.Warn("re-home dial failed; topic stays put until next refresh", "topic", id, "err", err)
				continue
			}
			p.pubs[want] = dst
		}
		lastSeq, retained, err := p.pubs[cur].DropTopic(id)
		if err != nil {
			p.log.Warn("re-home drop failed", "topic", id, "err", err)
			continue
		}
		if err := dst.AdoptTopic(topic, lastSeq, retained, true); err != nil {
			p.log.Warn("re-home adopt failed", "topic", id, "err", err)
		}
		p.topicPub[id] = want
		p.rehomed++
		p.log.Info("topic re-homed", "topic", id, "from", cur, "to", want, "epoch", t.Epoch)
	}
	// Close pairs that no longer carry any topic.
	inUse := make(map[string]bool, len(p.topicPub))
	for _, key := range p.topicPub {
		inUse[key] = true
	}
	for key, pub := range p.pubs {
		if !inUse[key] {
			pub.Close()
			delete(p.pubs, key)
		}
	}
}

// Publish routes the message to the topic's current shard.
func (p *Publisher) Publish(topic spec.TopicID, payload []byte) (uint64, error) {
	p.mu.Lock()
	key, ok := p.topicPub[topic]
	if !ok {
		p.mu.Unlock()
		return 0, fmt.Errorf("cluster: publisher does not own topic %d", topic)
	}
	pub := p.pubs[key]
	p.mu.Unlock()
	return pub.Publish(topic, payload)
}

// LastSeq returns the highest sequence number created for the topic.
func (p *Publisher) LastSeq(topic spec.TopicID) uint64 {
	p.mu.Lock()
	key, ok := p.topicPub[topic]
	if !ok {
		p.mu.Unlock()
		return 0
	}
	pub := p.pubs[key]
	p.mu.Unlock()
	return pub.LastSeq(topic)
}

// Epoch returns the epoch of the table the publisher currently routes by.
func (p *Publisher) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table.Epoch
}

// Redirects returns how many WrongShard redirects were observed.
func (p *Publisher) Redirects() uint64 { return p.redirects.Load() }

// Rehomed returns how many topic moves were executed.
func (p *Publisher) Rehomed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rehomed
}

// Close shuts every per-pair publisher down.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pubs := make([]*client.Publisher, 0, len(p.pubs))
	for _, pub := range p.pubs {
		pubs = append(pubs, pub)
	}
	p.pubs = make(map[string]*client.Publisher)
	p.mu.Unlock()
	close(p.stop)
	for _, pub := range pubs {
		pub.Close()
	}
	p.wg.Wait()
}

// SubscriberOptions configures a cluster-wide subscriber.
type SubscriberOptions struct {
	// Name identifies the subscriber.
	Name string
	// Topics to subscribe to, cluster-wide.
	Topics []spec.TopicID
	// Router supplies the routing table used to find every pair.
	Router *Router
	// Network supplies dialing.
	Network transport.Network
	// Clock is the synchronized timebase used to stamp ts.
	Clock clocksync.Clock
	// OnDeliver runs once per distinct delivery cluster-wide.
	OnDeliver func(client.Delivery)
	// OnFrame runs for every dispatch frame from every pair, duplicates
	// included — the raw per-link stream chaos invariants judge.
	OnFrame func(client.Delivery)
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// Subscriber subscribes to every pair in the table (both members, like the
// paper's subscribers hold connections to Primary and Backup) and
// de-duplicates cluster-wide: a topic re-homed between shards mid-run may
// legally arrive from two pairs, which per-pair dedup cannot see.
type Subscriber struct {
	opts SubscriberOptions
	subs []*client.Subscriber

	mu        sync.Mutex
	seen      map[spec.TopicID]map[uint64]bool
	received  map[spec.TopicID]uint64
	latencies map[spec.TopicID][]time.Duration
	dups      uint64
}

// NewSubscriber dials every pair in the router's current table.
func NewSubscriber(opts SubscriberOptions) (*Subscriber, error) {
	if opts.Router == nil || opts.Network == nil || opts.Clock == nil {
		return nil, errors.New("cluster: subscriber needs router, network, and clock")
	}
	if len(opts.Topics) == 0 {
		return nil, errors.New("cluster: subscriber needs topics")
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	table := opts.Router.Table()
	if len(table.Shards) == 0 {
		return nil, errors.New("cluster: empty routing table")
	}
	s := &Subscriber{
		opts:      opts,
		seen:      make(map[spec.TopicID]map[uint64]bool),
		received:  make(map[spec.TopicID]uint64),
		latencies: make(map[spec.TopicID][]time.Duration),
	}
	for i, e := range table.Shards {
		addrs := []string{e.Primary}
		if e.Backup != "" {
			addrs = append(addrs, e.Backup)
		}
		// Every pair gets the full subscription list: subscriptions to
		// topics a shard never owns are dormant and free, and they make the
		// subscriber immune to topics re-homing after setup.
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			Name:        opts.Name,
			Topics:      opts.Topics,
			BrokerAddrs: addrs,
			Network:     opts.Network,
			Clock:       opts.Clock,
			OnFrame:     s.onFrame,
			Logger:      opts.Logger,
		})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("cluster: subscribe shard %d: %w", i, err)
		}
		s.subs = append(s.subs, sub)
	}
	return s, nil
}

// onFrame aggregates the per-pair streams into cluster-level accounting.
func (s *Subscriber) onFrame(d client.Delivery) {
	if cb := s.opts.OnFrame; cb != nil {
		cb(d)
	}
	s.mu.Lock()
	seen := s.seen[d.Msg.Topic]
	if seen == nil {
		seen = make(map[uint64]bool)
		s.seen[d.Msg.Topic] = seen
	}
	dup := seen[d.Msg.Seq]
	if dup {
		s.dups++
	} else {
		seen[d.Msg.Seq] = true
		s.received[d.Msg.Topic]++
		s.latencies[d.Msg.Topic] = append(s.latencies[d.Msg.Topic], d.Latency)
	}
	deliver := s.opts.OnDeliver
	s.mu.Unlock()
	if !dup && deliver != nil {
		d.Duplicate = false
		deliver(d)
	}
}

// Received returns how many distinct messages arrived for the topic,
// cluster-wide.
func (s *Subscriber) Received(topic spec.TopicID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received[topic]
}

// Duplicates returns how many duplicate deliveries were discarded
// cluster-wide (per-pair duplicates included).
func (s *Subscriber) Duplicates() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Latencies returns a copy of the topic's end-to-end latency samples.
func (s *Subscriber) Latencies(topic spec.TopicID) []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.latencies[topic]...)
}

// MaxConsecutiveLoss reconstructs the longest run of missing sequence
// numbers for the topic, given the highest sequence the publisher created.
func (s *Subscriber) MaxConsecutiveLoss(topic spec.TopicID, highestCreated uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := s.seen[topic]
	maxRun, run := 0, 0
	for q := uint64(1); q <= highestCreated; q++ {
		if seen[q] {
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	return maxRun
}

// Close tears down every pair subscription.
func (s *Subscriber) Close() {
	for _, sub := range s.subs {
		sub.Close()
	}
}
