// Edge cases of the routing plane's failure containment: a Directory
// gone wrong (empty tables, stray frames) must never erase a client's
// working routes, and the cluster-wide subscriber must absorb the
// duplicate low-sequence stream a re-homed topic legally produces.
package cluster

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// scriptedDirectory is a fake routing plane: it speaks just enough of the
// protocol to answer RouteReq, with the served table chosen per request by
// the script function. It lets tests serve tables a real Directory
// refuses to hold (empty ones) and interleave stray frames.
type scriptedDirectory struct {
	ln     interface{ Close() error }
	script func(req int) (uint64, []wire.ShardEntry)
}

func startScriptedDirectory(t *testing.T, n transport.Network, addr string, script func(req int) (uint64, []wire.ShardEntry)) *scriptedDirectory {
	t.Helper()
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	d := &scriptedDirectory{ln: ln, script: script}
	var req atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := transport.NewConn(nc)
			go func() {
				defer conn.Close()
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					if f.Type != wire.TypeRouteReq {
						continue
					}
					epoch, shards := script(int(req.Add(1)))
					// A stray frame first: fetch must skip frames that are
					// not its RouteResp (wrong type, then wrong nonce).
					_ = conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce})
					_ = conn.Send(&wire.Frame{Type: wire.TypeRouteResp, Nonce: f.Nonce + 1000, Epoch: 1, Shards: nil})
					if err := conn.Send(&wire.Frame{Type: wire.TypeRouteResp, Nonce: f.Nonce, Epoch: epoch, Shards: shards}); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return d
}

// TestRouterRefusesEmptyTable serves a good two-shard table once and then
// a strictly-newer empty one. The cache must keep the working routes: an
// empty table routes nothing, so installing it would turn a routing-plane
// bug into a full outage (the guard mirrors Publisher.rehome's).
func TestRouterRefusesEmptyTable(t *testing.T) {
	n := transport.NewMem()
	good := []wire.ShardEntry{{Primary: "p0", Backup: "b0"}, {Primary: "p1", Backup: "b1"}}
	startScriptedDirectory(t, n, "dir", func(req int) (uint64, []wire.ShardEntry) {
		if req == 1 {
			return 1, good
		}
		return 99, nil // a "newer" table that would erase every route
	})

	r, err := NewRouter(RouterOptions{DirectoryAddr: "dir", Network: n, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Table(); got.Epoch != 1 || len(got.Shards) != 2 {
		t.Fatalf("initial table = epoch %d, %d shards; want epoch 1, 2 shards", got.Epoch, len(got.Shards))
	}

	got, err := r.Refresh()
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if got.Epoch != 1 || len(got.Shards) != 2 {
		t.Fatalf("after empty refresh: epoch %d, %d shards; want the cached epoch-1 table intact", got.Epoch, len(got.Shards))
	}

	// The in-band path (a WrongShard redirect advertising epoch 99) must
	// hit the same guard.
	if err := r.NoteEpoch(99); err != nil {
		t.Fatalf("note epoch: %v", err)
	}
	if got := r.Table(); got.Epoch != 1 || len(got.Shards) != 2 {
		t.Fatalf("after NoteEpoch(99): epoch %d, %d shards; want the cached table intact", got.Epoch, len(got.Shards))
	}
	if e := r.Epoch(); e != 1 {
		t.Fatalf("epoch = %d, want 1", e)
	}
}

// TestNewRouterRejectsEmptyFirstFetch points a fresh Router at a plane
// that only ever serves empty tables: construction must fail rather than
// hand callers a router that routes nothing.
func TestNewRouterRejectsEmptyFirstFetch(t *testing.T) {
	n := transport.NewMem()
	startScriptedDirectory(t, n, "empty-dir", func(int) (uint64, []wire.ShardEntry) {
		return 7, nil
	})
	if _, err := NewRouter(RouterOptions{DirectoryAddr: "empty-dir", Network: n, Logger: quietLog()}); err == nil {
		t.Fatal("NewRouter accepted a directory serving an empty table")
	} else if !strings.Contains(err.Error(), "empty routing table") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestNewRouterValidation covers the cheap construction failures.
func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterOptions{DirectoryAddr: "dir"}); err == nil {
		t.Fatal("NewRouter accepted a nil network")
	}
	n := transport.NewMem()
	if _, err := NewRouter(RouterOptions{DirectoryAddr: "nobody-home", Network: n, Logger: quietLog()}); err == nil {
		t.Fatal("NewRouter accepted an unreachable directory")
	}
}

// TestDirectoryServeToleratesStrays drives the real Directory's session
// loop with the frame types the wild sends it: Hello (session setup), a
// liveness Poll, a frame that has no business on the routing plane, and
// finally a RouteReq that must still be answered.
func TestDirectoryServeToleratesStrays(t *testing.T) {
	n := transport.NewMem()
	d := startDirectory(t, n, threePairs())
	defer d.Close()

	nc, err := n.Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	// Mem pipes rendezvous on every write, so the sender must not block the
	// reader: pump the frames from a goroutine while the test drains replies.
	go func() {
		for _, f := range []*wire.Frame{
			{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "stray-test"},
			{Type: wire.TypeDispatch, Topic: 1, Seq: 1},
			{Type: wire.TypePoll, Nonce: 41},
			{Type: wire.TypeRouteReq, Nonce: 42},
		} {
			if conn.Send(f) != nil {
				return
			}
		}
	}()
	sawPollReply := false
	for {
		f, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if f.Type == wire.TypePollReply && f.Nonce == 41 {
			sawPollReply = true
			continue
		}
		if f.Type == wire.TypeRouteResp && f.Nonce == 42 {
			if len(f.Shards) != 3 {
				t.Fatalf("got %d shards, want 3", len(f.Shards))
			}
			break
		}
	}
	if !sawPollReply {
		t.Fatal("directory never answered the liveness poll")
	}
}

// TestSubscriberDedupAcrossRehome replays the exact stream shape a topic
// re-home produces: the new owner pair starts the topic's retained window
// again from a low sequence number while the subscriber has already seen
// those messages from the old pair. Cluster-wide dedup must absorb the
// overlap (per-pair dedup cannot — each pair's stream is internally
// clean), deliver each distinct message exactly once, and still
// reconstruct loss runs correctly afterwards.
func TestSubscriberDedupAcrossRehome(t *testing.T) {
	s := &Subscriber{
		seen:      make(map[spec.TopicID]map[uint64]bool),
		received:  make(map[spec.TopicID]uint64),
		latencies: make(map[spec.TopicID][]time.Duration),
	}
	var delivered []uint64
	var frames int
	s.opts.OnDeliver = func(d client.Delivery) {
		if d.Duplicate {
			t.Errorf("OnDeliver saw a duplicate (topic %d seq %d)", d.Msg.Topic, d.Msg.Seq)
		}
		delivered = append(delivered, d.Msg.Seq)
	}
	s.opts.OnFrame = func(client.Delivery) { frames++ }

	const topic = spec.TopicID(7)
	feed := func(source string, seqs ...uint64) {
		for _, q := range seqs {
			s.onFrame(client.Delivery{
				Msg:     wire.Message{Topic: topic, Seq: q},
				Latency: time.Duration(q) * time.Millisecond,
				Source:  source,
			})
		}
	}
	feed("old-pair", 1, 2, 3, 4, 5) // the topic's life on its first owner
	feed("new-pair", 3, 4, 5, 6)    // re-home: retained window re-sent, then new traffic

	if got := s.Received(topic); got != 6 {
		t.Errorf("received %d distinct, want 6", got)
	}
	if got := s.Duplicates(); got != 3 {
		t.Errorf("%d duplicates discarded, want 3 (the re-sent retained window)", got)
	}
	if frames != 9 {
		t.Errorf("OnFrame saw %d frames, want all 9 including duplicates", frames)
	}
	if len(delivered) != 6 {
		t.Errorf("OnDeliver ran %d times, want 6", len(delivered))
	}
	if got := s.Latencies(topic); len(got) != 6 {
		t.Errorf("%d latency samples, want 6 (one per distinct delivery)", len(got))
	}
	// Sequences 7 and 8 never arrived: the longest missing run is 2.
	if got := s.MaxConsecutiveLoss(topic, 8); got != 2 {
		t.Errorf("max consecutive loss = %d, want 2", got)
	}
	if got := s.MaxConsecutiveLoss(topic, 6); got != 0 {
		t.Errorf("max consecutive loss over the delivered prefix = %d, want 0", got)
	}
}

// TestPublisherRehomeGuards drives rehome's refusal branches directly: a
// stale epoch and a newer-but-empty table must both leave the installed
// table untouched.
func TestPublisherRehomeGuards(t *testing.T) {
	p := &Publisher{
		log:      quietLog(),
		table:    Table{Epoch: 5, Shards: threePairs()},
		topics:   map[spec.TopicID]spec.Topic{},
		topicPub: map[spec.TopicID]string{},
		pubs:     map[string]*client.Publisher{},
	}
	p.rehome(Table{Epoch: 5, Shards: threePairs()}) // not newer
	p.rehome(Table{Epoch: 9})                       // newer but empty
	if got := p.Epoch(); got != 5 {
		t.Fatalf("table epoch = %d after guarded rehomes, want 5", got)
	}

	p.closed = true
	p.rehome(Table{Epoch: 9, Shards: threePairs()}) // closed publisher: no-op
	if got := p.Epoch(); got != 5 {
		t.Fatalf("closed publisher installed a table (epoch %d)", got)
	}
}

// TestPublisherUnknownTopic covers the not-owned branches of the routing
// accessors.
func TestPublisherUnknownTopic(t *testing.T) {
	p := &Publisher{
		log:      quietLog(),
		topicPub: map[spec.TopicID]string{},
		pubs:     map[string]*client.Publisher{},
	}
	if _, err := p.Publish(99, []byte("x")); err == nil {
		t.Fatal("Publish accepted a topic the publisher does not own")
	}
	if got := p.LastSeq(99); got != 0 {
		t.Fatalf("LastSeq(unknown) = %d, want 0", got)
	}
}

// TestEndpointValidation covers the cheap constructor failures of the
// cluster-wide endpoints, including the empty-table refusal against a
// hand-built empty router cache.
func TestEndpointValidation(t *testing.T) {
	n := transport.NewMem()
	emptyRouter := &Router{log: quietLog()} // zero-value cache: no shards
	topic := spec.Topic{ID: 1, Period: 20 * time.Millisecond, Deadline: time.Second,
		LossTolerance: 1, Retention: 4, Destination: spec.DestEdge}

	if _, err := NewPublisher(PublisherOptions{}); err == nil {
		t.Error("NewPublisher accepted missing router/network/clock")
	}
	if _, err := NewPublisher(PublisherOptions{Router: emptyRouter, Network: n, Clock: testClock()}); err == nil {
		t.Error("NewPublisher accepted zero topics")
	}
	if _, err := NewPublisher(PublisherOptions{Router: emptyRouter, Network: n, Clock: testClock(),
		Topics: []spec.Topic{topic}, Logger: quietLog()}); err == nil {
		t.Error("NewPublisher accepted an empty routing table")
	}
	if _, err := NewPublisher(PublisherOptions{Router: emptyRouter, Network: n, Clock: testClock(),
		Topics: []spec.Topic{{ID: 2}}, Logger: quietLog()}); err == nil {
		t.Error("NewPublisher accepted an invalid topic spec")
	}

	if _, err := NewSubscriber(SubscriberOptions{}); err == nil {
		t.Error("NewSubscriber accepted missing router/network/clock")
	}
	if _, err := NewSubscriber(SubscriberOptions{Router: emptyRouter, Network: n, Clock: testClock()}); err == nil {
		t.Error("NewSubscriber accepted zero topics")
	}
	if _, err := NewSubscriber(SubscriberOptions{Router: emptyRouter, Network: n, Clock: testClock(),
		Topics: []spec.TopicID{1}, Logger: quietLog()}); err == nil {
		t.Error("NewSubscriber accepted an empty routing table")
	}
}
