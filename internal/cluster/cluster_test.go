package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

func testClock() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func fastDetector() failover.Config {
	return failover.Config{Period: 2 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 2}
}

func lanParams() timing.Params {
	return timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
}

func lanTopic(id spec.TopicID, retention int) spec.Topic {
	return spec.Topic{
		ID: id, Category: -1, Period: 20 * time.Millisecond, Deadline: time.Second,
		LossTolerance: 0, Retention: retention, Destination: spec.DestEdge, PayloadSize: 16,
	}
}

func lanTopics(n, retention int) []spec.Topic {
	out := make([]spec.Topic, n)
	for i := range out {
		out[i] = lanTopic(spec.TopicID(i+1), retention)
	}
	return out
}

func testEngine() core.Config {
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	return cfg
}

func startTestCluster(t *testing.T, n transport.Network, shards int, topics []spec.Topic) *Cluster {
	t.Helper()
	c, err := New(Config{
		Shards:   shards,
		Topics:   topics,
		Engine:   testEngine(),
		Network:  n,
		Mem:      true,
		Clock:    testClock(),
		Workers:  2,
		Detector: fastDetector(),
		Logger:   quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// waitSubscribed blocks until every pair primary registered the subscriber.
func waitSubscribed(t *testing.T, c *Cluster) {
	t.Helper()
	for _, p := range c.Pairs {
		p := p
		waitFor(t, 2*time.Second, "subscriber registration", func() bool {
			return p.Primary.Health().EgressSubs >= 1
		})
	}
}

// TestClusterEndToEnd: topics spread over 3 shards, every message reaches
// the subscriber exactly once, and each shard's Primary served only its
// partition.
func TestClusterEndToEnd(t *testing.T) {
	n := transport.NewMem()
	topics := lanTopics(30, 3)
	clock := testClock()
	c := startTestCluster(t, n, 3, topics)
	r := newTestRouter(t, n, c.Dir.Addr())

	ids := make([]spec.TopicID, len(topics))
	for i, tp := range topics {
		ids[i] = tp.ID
	}
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "sub", Topics: ids, Router: r, Network: n, Clock: clock, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribed(t, c)
	pub, err := NewPublisher(PublisherOptions{
		Name: "pub", Topics: topics, Router: r, Network: n, Clock: clock,
		Detector: fastDetector(), Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const perTopic = 5
	for i := 0; i < perTopic; i++ {
		for _, id := range ids {
			if _, err := pub.Publish(id, []byte("cluster-payload!")); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, "all deliveries", func() bool {
		for _, id := range ids {
			if sub.Received(id) < perTopic {
				return false
			}
		}
		return true
	})
	if d := sub.Duplicates(); d != 0 {
		t.Errorf("duplicates = %d, want 0", d)
	}
	if pub.Redirects() != 0 || pub.Rehomed() != 0 {
		t.Errorf("unexpected redirects=%d rehomed=%d on a fresh table", pub.Redirects(), pub.Rehomed())
	}
	// Ownership is disjoint: each Primary published only its partition.
	var total uint64
	for _, p := range c.Pairs {
		got := p.Primary.Stats().Published
		want := uint64(len(p.Topics) * perTopic)
		if got != want {
			t.Errorf("shard %d served %d publishes, want %d", p.Index, got, want)
		}
		total += got
	}
	if want := uint64(len(ids) * perTopic); total != want {
		t.Errorf("cluster served %d publishes, want %d", total, want)
	}
}

// TestStalePublisherRedirectsAndRehomes: a publisher routing on an epoch-1
// single-shard table against an epoch-2 two-shard world is corrected in
// band — WrongShard redirect → refresh → topics re-homed with their
// retained messages — without losing a message.
func TestStalePublisherRedirectsAndRehomes(t *testing.T) {
	n := transport.NewMem()
	topics := lanTopics(12, 8) // retention covers everything published pre-refresh
	clock := testClock()
	c := startTestCluster(t, n, 2, topics)

	// The stale world: a directory whose table says shard 0 owns everything.
	full := c.Dir.Table()
	staleDir, err := NewDirectory(DirectoryOptions{
		ListenAddr: "routing-stale", Network: n,
		Shards: full.Shards[:1], Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(staleDir.Close)

	staleRouter := newTestRouter(t, n, staleDir.Addr())
	freshRouter := newTestRouter(t, n, c.Dir.Addr())
	ids := make([]spec.TopicID, len(topics))
	for i, tp := range topics {
		ids[i] = tp.ID
	}
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "sub", Topics: ids, Router: freshRouter, Network: n, Clock: clock, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribed(t, c)
	pub, err := NewPublisher(PublisherOptions{
		Name: "pub", Topics: topics, Router: staleRouter, Network: n, Clock: clock,
		Detector: fastDetector(), Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if pub.Epoch() != 1 {
		t.Fatalf("publisher epoch = %d, want stale 1", pub.Epoch())
	}

	// Advance the stale directory to the real two-shard table (epoch 2).
	// The publisher has not refreshed: its first publishes to shard-1
	// topics still go to pair 0, which rejects them with WrongShard.
	if err := staleDir.SetShards(full.Shards); err != nil {
		t.Fatal(err)
	}
	const perTopic = 4
	for i := 0; i < perTopic; i++ {
		for _, id := range ids {
			if _, err := pub.Publish(id, []byte("redirected-load!")); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	// In-band correction: redirects observed, table converged, topics moved
	// onto shard 1, and the retained window resent — nothing lost.
	waitFor(t, 5*time.Second, "router convergence", func() bool { return pub.Epoch() == 2 })
	if pub.Redirects() == 0 {
		t.Error("no WrongShard redirects observed")
	}
	movedWant := 0
	for _, tp := range topics {
		if ShardOf(tp.ID, 2) == 1 {
			movedWant++
		}
	}
	waitFor(t, 5*time.Second, "re-homing", func() bool { return pub.Rehomed() == uint64(movedWant) })
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		for _, id := range ids {
			if sub.Received(id) < pub.LastSeq(id) {
				return false
			}
		}
		return true
	})
	for _, id := range ids {
		if loss := sub.MaxConsecutiveLoss(id, pub.LastSeq(id)); loss != 0 {
			t.Errorf("topic %d lost %d consecutive messages across the re-home", id, loss)
		}
	}
}

// TestClusterPromotionKeepsShard: killing one shard's Primary promotes its
// Backup, the Directory bumps the epoch with the pair keeping the shard,
// and traffic to that shard continues; other shards never notice.
func TestClusterPromotionKeepsShard(t *testing.T) {
	n := transport.NewMem()
	topics := lanTopics(12, 4)
	clock := testClock()
	c := startTestCluster(t, n, 2, topics)
	r := newTestRouter(t, n, c.Dir.Addr())

	ids := make([]spec.TopicID, len(topics))
	for i, tp := range topics {
		ids[i] = tp.ID
	}
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "sub", Topics: ids, Router: r, Network: n, Clock: clock, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribed(t, c)
	pub, err := NewPublisher(PublisherOptions{
		Name: "pub", Topics: topics, Router: r, Network: n, Clock: clock,
		Detector: fastDetector(), Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	publishRound := func() {
		for _, id := range ids {
			if _, err := pub.Publish(id, []byte("failover-payload")); err != nil {
				t.Logf("publish during failover: %v", err) // expected near the crash
			}
		}
	}
	publishRound()

	victim := c.Pairs[0]
	victim.Primary.Stop()
	select {
	case <-victim.Backup.Promoted():
	case <-time.After(5 * time.Second):
		t.Fatal("backup never promoted")
	}
	// The watcher records the promotion: epoch bumps, pair keeps the shard.
	waitFor(t, 2*time.Second, "directory epoch bump", func() bool { return c.Dir.Epoch() == 2 })
	e := c.Dir.Table().Shards[0]
	if e.Primary != victim.Backup.Addr() || e.Backup != "" {
		t.Errorf("post-promotion entry = %+v, want promoted backup as primary", e)
	}
	// Keep publishing: per-pair fail-over already redirected the links.
	for i := 0; i < 3; i++ {
		publishRound()
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 10*time.Second, "deliveries after promotion", func() bool {
		for _, id := range ids {
			if sub.Received(id) < pub.LastSeq(id) {
				return false
			}
		}
		return true
	})
	for _, id := range ids {
		tp := topics[id-1]
		if loss := sub.MaxConsecutiveLoss(id, pub.LastSeq(id)); loss > tp.LossTolerance {
			t.Errorf("topic %d: %d consecutive losses > Li=%d", id, loss, tp.LossTolerance)
		}
	}
}

// TestClusterValidation covers constructor guards.
func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Clock: testClock(), Network: transport.NewMem()}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := New(Config{Shards: 1, Network: transport.NewMem()}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(Config{Shards: 1, Clock: testClock()}); err == nil {
		t.Error("nil network accepted")
	}
	n := transport.NewMem()
	r := &Router{}
	if _, err := NewPublisher(PublisherOptions{Router: r, Network: n, Clock: testClock(), Logger: quietLog()}); err == nil {
		t.Error("publisher with no topics accepted")
	}
	if _, err := NewSubscriber(SubscriberOptions{Router: r, Network: n, Clock: testClock(), Logger: quietLog()}); err == nil {
		t.Error("subscriber with no topics accepted")
	}
	if _, err := NewPublisher(PublisherOptions{Topics: lanTopics(1, 0), Network: n, Clock: testClock()}); err == nil {
		t.Error("publisher with nil router accepted")
	}
}
