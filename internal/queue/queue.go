// Package queue provides the job queues at the heart of FRAME's Message
// Delivery module: an Earliest-Deadline-First priority queue (the paper's
// "EDF Job Queue", §IV-A) and a First-Come-First-Serve queue used by the
// FCFS and FCFS− baseline configurations (§VI).
//
// Jobs reference messages by position in a message store rather than
// carrying payloads, mirroring the paper's design where the Job Generator
// passes "a reference to the message's position in the Message Buffer".
package queue

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// Kind distinguishes dispatch jobs from replication jobs.
type Kind int

// Job kinds.
const (
	KindDispatch Kind = iota + 1
	KindReplicate
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Job is one unit of work for the Message Delivery module: push one message
// either to its subscribers (dispatch) or to the Backup (replicate).
type Job struct {
	Kind  Kind
	Topic spec.TopicID
	// Seq is the topic-local message sequence number the job refers to.
	Seq uint64
	// BufferIndex is the message's stable position in the buffer it lives in
	// (Message Buffer on the Primary, Backup Buffer during recovery).
	BufferIndex uint64
	// Release is the job's release time (message arrival at the broker, tp).
	Release time.Duration
	// Deadline is the absolute deadline (tp + Dd or tp + Dr).
	Deadline time.Duration
	// Recovery marks jobs generated while draining the Backup Buffer after a
	// promotion, which read from the Backup Buffer instead of the Message
	// Buffer.
	Recovery bool
}

// Queue is the scheduling order abstraction: both EDF and FCFS satisfy it.
type Queue interface {
	// Push enqueues a job.
	Push(Job)
	// Pop removes and returns the next job by the queue's policy.
	Pop() (Job, bool)
	// Peek returns the next job without removing it.
	Peek() (Job, bool)
	// Len returns the number of queued jobs.
	Len() int
}

// edfItem wraps a job with an insertion sequence for deterministic
// tie-breaking among equal deadlines.
type edfItem struct {
	job Job
	seq uint64
}

// EDF is a binary-heap Earliest-Deadline-First queue. Ties on deadline break
// by insertion order, keeping the schedule deterministic. The heap is sifted
// directly over the typed item slice rather than through container/heap,
// whose any-valued Push/Pop box every job on the hot path (two heap
// allocations per scheduled message). The zero value is ready to use. EDF is
// not safe for concurrent use.
type EDF struct {
	items []edfItem
	seq   uint64
}

var _ Queue = (*EDF)(nil)

// NewEDF returns an empty EDF queue.
func NewEDF() *EDF { return &EDF{} }

func (q *EDF) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.job.Deadline != b.job.Deadline {
		return a.job.Deadline < b.job.Deadline
	}
	return a.seq < b.seq
}

// up sifts the item at i toward the root until its parent is due no later.
func (q *EDF) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// down sifts the item at i toward the leaves until both children are due no
// earlier.
func (q *EDF) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		next := left
		if right := left + 1; right < n && q.less(right, left) {
			next = right
		}
		if !q.less(next, i) {
			return
		}
		q.items[i], q.items[next] = q.items[next], q.items[i]
		i = next
	}
}

// Push enqueues a job ordered by absolute deadline.
func (q *EDF) Push(j Job) {
	q.seq++
	q.items = append(q.items, edfItem{job: j, seq: q.seq})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the job with the earliest deadline.
func (q *EDF) Pop() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	it := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = edfItem{}
	q.items = q.items[:n]
	q.down(0)
	return it.job, true
}

// Peek returns the earliest-deadline job without removing it.
func (q *EDF) Peek() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	return q.items[0].job, true
}

// Len returns the number of queued jobs.
func (q *EDF) Len() int { return len(q.items) }

// FCFS is a first-come-first-serve queue: jobs pop in insertion order,
// regardless of deadline. It models the paper's undifferentiated baseline.
// Implemented as a growable circular buffer to keep Pop O(1) without
// shifting. The zero value is ready to use.
type FCFS struct {
	buf  []Job
	head int
	n    int
}

var _ Queue = (*FCFS)(nil)

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Push appends a job at the tail.
func (q *FCFS) Push(j Job) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = j
	q.n++
}

// Pop removes and returns the oldest job.
func (q *FCFS) Pop() (Job, bool) {
	if q.n == 0 {
		return Job{}, false
	}
	j := q.buf[q.head]
	q.buf[q.head] = Job{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return j, true
}

// Peek returns the oldest job without removing it.
func (q *FCFS) Peek() (Job, bool) {
	if q.n == 0 {
		return Job{}, false
	}
	return q.buf[q.head], true
}

// Len returns the number of queued jobs.
func (q *FCFS) Len() int { return q.n }

func (q *FCFS) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]Job, newCap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Policy names a queue discipline.
type Policy int

// Queue policies.
const (
	PolicyEDF Policy = iota + 1
	PolicyFCFS
)

// String returns the policy label.
func (p Policy) String() string {
	switch p {
	case PolicyEDF:
		return "EDF"
	case PolicyFCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// New returns an empty queue implementing the policy.
func New(p Policy) Queue {
	switch p {
	case PolicyEDF:
		return NewEDF()
	case PolicyFCFS:
		return NewFCFS()
	default:
		panic(fmt.Sprintf("queue: unknown policy %d", int(p)))
	}
}

// Metered decorates a Queue with atomically readable depth and cumulative
// push/pop counters per job kind, so an admin endpoint can sample queue
// state without taking the engine lock. Push/Pop/Peek follow the wrapped
// queue's ownership rules (single-owner for the scalar queues; per-lane
// ownership for a Laned inner — the meters themselves are all atomic, so
// concurrent different-lane use through one Metered is safe). The accessors
// are safe from any goroutine.
type Metered struct {
	inner    Queue
	laned    Laned // non-nil iff inner is lane-addressable
	depth    atomic.Int64
	maxDepth atomic.Int64
	pushes   [2]atomic.Uint64 // indexed by Kind−1
	pops     [2]atomic.Uint64
	lane     []atomic.Int64 // per-lane depth; len 0 unless inner is Laned
}

var _ Queue = (*Metered)(nil)

// NewMetered wraps inner with meters. A lane-addressable inner additionally
// gets per-lane depth gauges and the PopLane passthrough.
func NewMetered(inner Queue) *Metered {
	m := &Metered{inner: inner}
	if l, ok := inner.(Laned); ok {
		m.laned = l
		m.lane = make([]atomic.Int64, l.Lanes())
	}
	return m
}

func kindIndex(k Kind) int {
	if k == KindReplicate {
		return 1
	}
	return 0
}

// Push enqueues a job and bumps the depth and push meters.
func (m *Metered) Push(j Job) {
	m.inner.Push(j)
	m.pushes[kindIndex(j.Kind)].Add(1)
	if m.lane != nil {
		m.lane[LaneFor(j.Topic, len(m.lane))].Add(1)
	}
	d := m.depth.Add(1)
	for {
		hi := m.maxDepth.Load()
		if d <= hi || m.maxDepth.CompareAndSwap(hi, d) {
			return
		}
	}
}

// Pop removes the next job per the wrapped policy, updating the meters.
func (m *Metered) Pop() (Job, bool) {
	j, ok := m.inner.Pop()
	if ok {
		m.pops[kindIndex(j.Kind)].Add(1)
		m.depth.Add(-1)
		if m.lane != nil {
			m.lane[LaneFor(j.Topic, len(m.lane))].Add(-1)
		}
	}
	return j, ok
}

// PopLane removes the next job of one lane, updating the meters. It panics
// when the wrapped queue is not lane-addressable.
func (m *Metered) PopLane(lane int) (Job, bool) {
	j, ok := m.laned.PopLane(lane)
	if ok {
		m.pops[kindIndex(j.Kind)].Add(1)
		m.depth.Add(-1)
		m.lane[lane].Add(-1)
	}
	return j, ok
}

// Lanes returns the wrapped queue's lane count, or 1 for a scalar queue.
func (m *Metered) Lanes() int {
	if m.laned == nil {
		return 1
	}
	return m.laned.Lanes()
}

// LaneDepth returns the current depth of one lane; for a scalar inner queue
// lane 0 reports the whole depth. Safe from any goroutine.
func (m *Metered) LaneDepth(lane int) int64 {
	if m.lane == nil {
		return m.depth.Load()
	}
	return m.lane[lane].Load()
}

// Peek returns the next job without removing it.
func (m *Metered) Peek() (Job, bool) { return m.inner.Peek() }

// Len returns the number of queued jobs (single-owner, like the queue).
func (m *Metered) Len() int { return m.inner.Len() }

// Depth returns the current queue depth; safe to call from any goroutine.
func (m *Metered) Depth() int64 { return m.depth.Load() }

// MaxDepth returns the high-water depth since creation.
func (m *Metered) MaxDepth() int64 { return m.maxDepth.Load() }

// Pushes returns the cumulative pushes of kind k.
func (m *Metered) Pushes(k Kind) uint64 { return m.pushes[kindIndex(k)].Load() }

// Pops returns the cumulative pops of kind k.
func (m *Metered) Pops(k Kind) uint64 { return m.pops[kindIndex(k)].Load() }

// SortedEDF is a reference EDF implementation backed by a sorted slice with
// linear insertion. It exists for the queue-implementation ablation
// benchmark: correct but O(n) per Push, it demonstrates why the heap matters
// at broker scale.
type SortedEDF struct {
	items []edfItem
	seq   uint64
}

var _ Queue = (*SortedEDF)(nil)

// NewSortedEDF returns an empty sorted-slice EDF queue.
func NewSortedEDF() *SortedEDF { return &SortedEDF{} }

// Push inserts a job keeping the slice sorted by (deadline, insertion).
func (q *SortedEDF) Push(j Job) {
	q.seq++
	it := edfItem{job: j, seq: q.seq}
	// Binary search for the insertion point, then shift.
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		m := q.items[mid]
		if m.job.Deadline < it.job.Deadline ||
			(m.job.Deadline == it.job.Deadline && m.seq < it.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.items = append(q.items, edfItem{})
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = it
}

// Pop removes and returns the earliest-deadline job.
func (q *SortedEDF) Pop() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	it := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = edfItem{}
	q.items = q.items[:len(q.items)-1]
	return it.job, true
}

// Peek returns the earliest-deadline job without removing it.
func (q *SortedEDF) Peek() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	return q.items[0].job, true
}

// Len returns the number of queued jobs.
func (q *SortedEDF) Len() int { return len(q.items) }
