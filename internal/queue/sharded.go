// Sharded EDF dispatch lanes.
//
// FRAME's Lemmas 1–2 derive per-topic deadlines that are independent across
// topics, so a single global EDF queue — while matching the paper's
// single-host presentation — serializes work that has no ordering
// relationship. ShardedEDF hashes topics onto a fixed set of lanes, each a
// plain EDF heap. Within a lane the schedule is exactly the paper's EDF
// order; across lanes, work proceeds in parallel. Because a topic maps to
// one lane for the queue's lifetime, per-topic FIFO (for monotone per-topic
// deadlines, the shape real traffic has) and the Table 3 dispatch/replicate
// coordination both stay confined to a single lane.

package queue

import (
	"fmt"

	"repro/internal/spec"
)

// LaneFor maps a topic to a lane in [0, n). The mapping is stable for the
// life of a process (pure function of the ID), so every job of a topic —
// dispatch and replicate alike — lands in the same lane. n ≤ 1 always maps
// to lane 0.
func LaneFor(id spec.TopicID, n int) int {
	if n <= 1 {
		return 0
	}
	// Fibonacci-style avalanche so adjacent IDs (the common workload shape)
	// spread instead of clustering mod n.
	h := uint32(id) * 0x9e3779b1
	h ^= h >> 16
	return int(h % uint32(n))
}

// Laned is the lane-addressable queue contract ShardedEDF satisfies.
// Distinct lanes may be operated concurrently; a single lane is
// single-owner, like the scalar queues.
type Laned interface {
	Queue
	// Lanes returns the fixed lane count.
	Lanes() int
	// PopLane removes and returns lane's earliest-deadline job.
	PopLane(lane int) (Job, bool)
	// PeekLane returns lane's earliest-deadline job without removing it.
	PeekLane(lane int) (Job, bool)
	// LenLane returns the number of jobs queued in lane.
	LenLane(lane int) int
}

// ShardedEDF partitions jobs by topic hash across n independent EDF heaps.
//
// Concurrency: the lane slice is immutable after NewShardedEDF, and lanes
// share no state, so operations on *different* lanes are safe to run
// concurrently without locking. Operations on the same lane — including
// Push, which routes to LaneFor(j.Topic) — must be serialized by the
// caller, typically with one mutex per lane. The whole-queue methods (Pop,
// Peek, Len) touch every lane and require exclusive access to all of them;
// they exist so a ShardedEDF can stand in wherever a Queue is expected
// (single-owner callers such as the simulator and tests).
type ShardedEDF struct {
	lanes []EDF
}

var _ Queue = (*ShardedEDF)(nil)
var _ Laned = (*ShardedEDF)(nil)

// NewShardedEDF returns an empty queue with n lanes (n ≥ 1).
func NewShardedEDF(n int) *ShardedEDF {
	if n < 1 {
		panic(fmt.Sprintf("queue: lane count %d must be ≥ 1", n))
	}
	return &ShardedEDF{lanes: make([]EDF, n)}
}

// Lanes returns the fixed lane count.
func (q *ShardedEDF) Lanes() int { return len(q.lanes) }

// Lane returns the lane the topic's jobs route to.
func (q *ShardedEDF) Lane(id spec.TopicID) int { return LaneFor(id, len(q.lanes)) }

// Push enqueues a job into its topic's lane.
func (q *ShardedEDF) Push(j Job) {
	q.lanes[q.Lane(j.Topic)].Push(j)
}

// PopLane removes and returns lane's earliest-deadline job.
func (q *ShardedEDF) PopLane(lane int) (Job, bool) { return q.lanes[lane].Pop() }

// PeekLane returns lane's earliest-deadline job without removing it.
func (q *ShardedEDF) PeekLane(lane int) (Job, bool) { return q.lanes[lane].Peek() }

// LenLane returns the number of jobs queued in lane.
func (q *ShardedEDF) LenLane(lane int) int { return q.lanes[lane].Len() }

// Pop removes and returns the globally earliest-deadline job, breaking ties
// by lane index. It scans every lane and therefore needs exclusive access
// to the whole queue.
func (q *ShardedEDF) Pop() (Job, bool) {
	best := -1
	var bestDeadline Job
	for i := range q.lanes {
		j, ok := q.lanes[i].Peek()
		if !ok {
			continue
		}
		if best < 0 || j.Deadline < bestDeadline.Deadline {
			best, bestDeadline = i, j
		}
	}
	if best < 0 {
		return Job{}, false
	}
	return q.lanes[best].Pop()
}

// Peek returns the globally earliest-deadline job without removing it.
func (q *ShardedEDF) Peek() (Job, bool) {
	best := -1
	var bestJob Job
	for i := range q.lanes {
		j, ok := q.lanes[i].Peek()
		if !ok {
			continue
		}
		if best < 0 || j.Deadline < bestJob.Deadline {
			best, bestJob = i, j
		}
	}
	if best < 0 {
		return Job{}, false
	}
	return bestJob, true
}

// Len returns the total number of queued jobs across all lanes.
func (q *ShardedEDF) Len() int {
	n := 0
	for i := range q.lanes {
		n += q.lanes[i].Len()
	}
	return n
}
