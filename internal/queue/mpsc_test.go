package queue

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mpscSeed returns the property-test seed, overridable via FRAME_CHAOS_SEED
// the way the chaos and sharded-EDF property suites are. The seed is logged
// so a -race failure replays exactly.
func mpscSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("FRAME_CHAOS_SEED"); env != "" {
		if s, err := strconv.ParseInt(env, 0, 64); err == nil {
			t.Logf("mpsc property seed (from FRAME_CHAOS_SEED): %d", s)
			return s
		}
	}
	s := time.Now().UnixNano()
	t.Logf("mpsc property seed: %d (replay with FRAME_CHAOS_SEED=%d)", s, s)
	return s
}

type mpscRec struct {
	producer int
	seq      int
}

// TestMPSCPerProducerOrderAcrossWrap drives many producers through a ring
// far smaller than the message count, so every slot wraps dozens of times,
// and asserts the two MPSC safety properties at once: no value is lost or
// duplicated, and each producer's values arrive in the order it pushed
// them (per-producer FIFO — the property the broker's per-topic FIFO
// reduces to, since a topic's frames all arrive on one session goroutine).
func TestMPSCPerProducerOrderAcrossWrap(t *testing.T) {
	seed := mpscSeed(t)
	const (
		producers = 8
		perProd   = 5000
		capacity  = 16 // tiny on purpose: forces constant wrap + full-ring backoff
	)
	q := NewMPSC[mpscRec](capacity)
	p := NewParker()

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(pr)))
			for i := 0; i < perProd; i++ {
				for !q.PushInPlace(func(r *mpscRec) { r.producer = pr; r.seq = i }) {
					// Ring full: let the consumer run.
					time.Sleep(time.Duration(rng.Intn(20)) * time.Microsecond)
				}
				p.Unpark()
			}
		}(pr)
	}

	got := make([][]int, producers)
	total := 0
	for total < producers*perProd {
		popped := false
		for q.PopInto(func(r *mpscRec) {
			got[r.producer] = append(got[r.producer], r.seq)
			total++
		}) {
			popped = true
		}
		if !popped {
			p.Park(func() bool { return !q.Empty() })
		}
	}
	wg.Wait()
	if !q.Empty() {
		t.Fatalf("ring not empty after consuming %d values", total)
	}
	for pr := range got {
		if len(got[pr]) != perProd {
			t.Fatalf("producer %d: %d values consumed, want %d (lost/duplicated slots)", pr, len(got[pr]), perProd)
		}
		for i, s := range got[pr] {
			if s != i {
				t.Fatalf("producer %d: value %d arrived at position %d (per-producer order broken)", pr, s, i)
			}
		}
	}
}

// TestMPSCFullRejectsWithoutFill checks the bounded contract: a full ring
// refuses the push (returning false, not calling fill) and accepts again
// after a pop.
func TestMPSCFullRejectsWithoutFill(t *testing.T) {
	q := NewMPSC[int](4)
	for i := 0; i < q.Cap(); i++ {
		if !q.PushInPlace(func(v *int) { *v = i }) {
			t.Fatalf("push %d rejected below capacity %d", i, q.Cap())
		}
	}
	filled := false
	if q.PushInPlace(func(v *int) { filled = true }) {
		t.Fatal("push accepted on a full ring")
	}
	if filled {
		t.Fatal("fill ran for a rejected push")
	}
	var v0 int
	if !q.PopInto(func(v *int) { v0 = *v }) || v0 != 0 {
		t.Fatalf("pop after full: got %d, want 0", v0)
	}
	if !q.PushInPlace(func(v *int) { *v = 99 }) {
		t.Fatal("push rejected after a pop freed a slot")
	}
	for want := 1; want < q.Cap(); want++ {
		var v int
		if !q.PopInto(func(p *int) { v = *p }) || v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
	}
	var v int
	if !q.PopInto(func(p *int) { v = *p }) || v != 99 {
		t.Fatalf("drain tail: got %d, want 99", v)
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("ring should be empty: Len=%d", q.Len())
	}
}

// TestParkerNeverMissesWakeup hammers the exact race Park/Unpark must
// close: a producer publishes one item and unparks while the consumer is
// between "saw empty" and "asleep". Every round is a fresh handoff; a
// single missed wakeup deadlocks the round and the watchdog fails the
// test. Run with -race; the seed varies the producer's timing.
func TestParkerNeverMissesWakeup(t *testing.T) {
	seed := mpscSeed(t)
	const rounds = 20000
	q := NewMPSC[int](8)
	p := NewParker()

	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < rounds; i++ {
			for !q.PushInPlace(func(v *int) { *v = i }) {
			}
			p.Unpark()
			// Stall so the consumer drains and parks: usually a cheap
			// yield, occasionally a real sleep (sleep granularity is
			// ~1ms on loaded kernels, so keep those rare).
			if rng.Intn(512) == 0 {
				time.Sleep(50 * time.Microsecond)
			} else if rng.Intn(4) == 0 {
				runtime.Gosched()
			}
		}
	}()

	consumed := 0
	deadline := time.Now().Add(30 * time.Second)
	for consumed < rounds {
		if q.PopInto(func(v *int) {
			if *v != consumed {
				t.Errorf("out of order: got %d, want %d", *v, consumed)
			}
			consumed++
		}) {
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("wakeup missed: consumer stuck at %d of %d", consumed, rounds)
		}
		parked := make(chan struct{})
		go func() {
			// Watchdog: a missed wakeup would leave Park asleep forever
			// even though the ring is non-empty. Unpark spuriously after
			// a long beat so the test fails via the deadline above
			// rather than hanging the suite.
			select {
			case <-parked:
			case <-time.After(5 * time.Second):
				p.Unpark()
			}
		}()
		p.Park(func() bool { return !q.Empty() })
		close(parked)
	}
	<-done
}

// TestParkerSpinSeesWork covers the busy-poll path: Spin returns true as
// soon as ready fires and false when it never does.
func TestParkerSpinSeesWork(t *testing.T) {
	p := NewParker()
	var flag atomic.Bool
	if p.Spin(flag.Load, 64) {
		t.Fatal("Spin reported work with none present")
	}
	go func() {
		time.Sleep(100 * time.Microsecond)
		flag.Store(true)
	}()
	if !p.Spin(flag.Load, 1<<24) {
		t.Fatal("Spin never observed ready going true")
	}
}

// FuzzMPSCInterleaving replays fuzz-chosen producer/consumer schedules over
// a tiny ring and checks conservation (nothing lost, nothing duplicated,
// per-producer order). The schedule byte string is the fuzz vector: two
// bits pick the acting producer, the rest of the byte picks push-vs-pop
// weighting.
func FuzzMPSCInterleaving(f *testing.F) {
	f.Add([]byte{0x00, 0xff, 0x13, 0x7a, 0x55})
	f.Add([]byte("interleave"))
	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) == 0 || len(schedule) > 4096 {
			return
		}
		const producers = 4
		q := NewMPSC[mpscRec](4)
		next := make([]int, producers)    // per-producer next seq to push
		wantSeq := make([]int, producers) // per-producer next seq to pop
		pushed, popped := 0, 0
		for _, b := range schedule {
			if b&0x4 == 0 {
				pr := int(b) % producers
				if q.PushInPlace(func(r *mpscRec) { r.producer = pr; r.seq = next[pr] }) {
					next[pr]++
					pushed++
				}
			} else {
				q.PopInto(func(r *mpscRec) {
					if r.seq != wantSeq[r.producer] {
						t.Fatalf("producer %d: got seq %d, want %d", r.producer, r.seq, wantSeq[r.producer])
					}
					wantSeq[r.producer]++
					popped++
				})
			}
		}
		for q.PopInto(func(r *mpscRec) {
			if r.seq != wantSeq[r.producer] {
				t.Fatalf("drain: producer %d got seq %d, want %d", r.producer, r.seq, wantSeq[r.producer])
			}
			wantSeq[r.producer]++
			popped++
		}) {
		}
		if pushed != popped {
			t.Fatalf("conservation: pushed %d, popped %d", pushed, popped)
		}
	})
}

// BenchmarkMPSCPushContended measures the producer-side cost under the
// contention shape the broker sees: GOMAXPROCS publisher goroutines
// hammering one lane's intake while a consumer drains.
func BenchmarkMPSCPushContended(b *testing.B) {
	q := NewMPSC[int](1024)
	p := NewParker()
	stop := make(chan struct{})
	var drained atomic.Uint64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !q.PopInto(func(*int) { drained.Add(1) }) {
				p.Park(func() bool { return !q.Empty() })
			}
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for !q.PushInPlace(func(v *int) { *v = i }) {
			}
			p.Unpark()
			i++
		}
	})
	close(stop)
	p.Unpark()
	_ = fmt.Sprintf("%d", drained.Load())
}
