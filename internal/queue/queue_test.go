package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func job(deadline time.Duration) Job {
	return Job{Kind: KindDispatch, Deadline: deadline}
}

func TestEDFPopsEarliestDeadline(t *testing.T) {
	q := NewEDF()
	for _, d := range []time.Duration{50, 10, 30, 20, 40} {
		q.Push(job(d * time.Millisecond))
	}
	want := []time.Duration{10, 20, 30, 40, 50}
	for i, w := range want {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d failed", i)
		}
		if j.Deadline != w*time.Millisecond {
			t.Errorf("Pop %d deadline = %v, want %v", i, j.Deadline, w*time.Millisecond)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue succeeded")
	}
}

func TestEDFTieBreaksByInsertion(t *testing.T) {
	q := NewEDF()
	for i := uint64(0); i < 8; i++ {
		q.Push(Job{Seq: i, Deadline: time.Millisecond})
	}
	for i := uint64(0); i < 8; i++ {
		j, _ := q.Pop()
		if j.Seq != i {
			t.Fatalf("tie-break order broken: got seq %d at pop %d", j.Seq, i)
		}
	}
}

func TestEDFPeek(t *testing.T) {
	q := NewEDF()
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty succeeded")
	}
	q.Push(job(20 * time.Millisecond))
	q.Push(job(10 * time.Millisecond))
	j, ok := q.Peek()
	if !ok || j.Deadline != 10*time.Millisecond {
		t.Errorf("Peek = %v, %v", j.Deadline, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Peek consumed: Len = %d", q.Len())
	}
}

func TestFCFSOrder(t *testing.T) {
	q := NewFCFS()
	// Deadlines deliberately reversed: FCFS must ignore them.
	for i := 0; i < 100; i++ {
		q.Push(Job{Seq: uint64(i), Deadline: time.Duration(100-i) * time.Millisecond})
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		j, ok := q.Pop()
		if !ok || j.Seq != uint64(i) {
			t.Fatalf("Pop %d = seq %d, ok %v", i, j.Seq, ok)
		}
	}
}

func TestFCFSInterleavedPushPop(t *testing.T) {
	q := NewFCFS()
	next := uint64(0)
	pushed := uint64(0)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 {
			q.Push(Job{Seq: pushed})
			pushed++
		} else if j, ok := q.Pop(); ok {
			if j.Seq != next {
				t.Fatalf("step %d: popped %d, want %d", step, j.Seq, next)
			}
			next++
		}
	}
	for {
		j, ok := q.Pop()
		if !ok {
			break
		}
		if j.Seq != next {
			t.Fatalf("drain: popped %d, want %d", j.Seq, next)
		}
		next++
	}
	if next != pushed {
		t.Errorf("drained %d, pushed %d", next, pushed)
	}
}

func TestFCFSPeek(t *testing.T) {
	q := NewFCFS()
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty succeeded")
	}
	q.Push(Job{Seq: 7})
	if j, ok := q.Peek(); !ok || j.Seq != 7 {
		t.Errorf("Peek = %+v, %v", j, ok)
	}
}

func TestNewByPolicy(t *testing.T) {
	if _, ok := New(PolicyEDF).(*EDF); !ok {
		t.Error("New(PolicyEDF) did not return *EDF")
	}
	if _, ok := New(PolicyFCFS).(*FCFS); !ok {
		t.Error("New(PolicyFCFS) did not return *FCFS")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	New(Policy(0))
}

func TestPolicyAndKindStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{PolicyEDF.String(), "EDF"},
		{PolicyFCFS.String(), "FCFS"},
		{Policy(9).String(), "Policy(9)"},
		{KindDispatch.String(), "dispatch"},
		{KindReplicate.String(), "replicate"},
		{Kind(9).String(), "Kind(9)"},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("got %q, want %q", tc.got, tc.want)
		}
	}
}

// TestEDFImplementationsAgree: the heap EDF and the sorted-slice reference
// produce identical pop sequences for any input, interleaved with pops.
func TestEDFImplementationsAgree(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewEDF(), NewSortedEDF()
		steps := int(n) + 10
		for s := 0; s < steps; s++ {
			if rng.Intn(3) > 0 {
				j := Job{
					Seq:      uint64(s),
					Deadline: time.Duration(rng.Intn(20)) * time.Millisecond,
				}
				a.Push(j)
				b.Push(j)
			} else {
				ja, oka := a.Pop()
				jb, okb := b.Pop()
				if oka != okb || ja != jb {
					return false
				}
			}
		}
		for a.Len() > 0 || b.Len() > 0 {
			ja, oka := a.Pop()
			jb, okb := b.Pop()
			if oka != okb || ja != jb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEDFPopMonotoneProperty: with no interleaved pushes, deadlines pop in
// nondecreasing order.
func TestEDFPopMonotoneProperty(t *testing.T) {
	f := func(deadlines []int16) bool {
		q := NewEDF()
		for _, d := range deadlines {
			q.Push(job(time.Duration(d) * time.Microsecond))
		}
		prev := time.Duration(-1 << 62)
		for {
			j, ok := q.Pop()
			if !ok {
				break
			}
			if j.Deadline < prev {
				return false
			}
			prev = j.Deadline
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func benchQueue(b *testing.B, q Queue) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	const backlog = 4096
	for i := 0; i < backlog; i++ {
		q.Push(job(time.Duration(rng.Intn(1000)) * time.Microsecond))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(job(time.Duration(rng.Intn(1000)) * time.Microsecond))
		q.Pop()
	}
}

func BenchmarkEDFHeap(b *testing.B)   { benchQueue(b, NewEDF()) }
func BenchmarkEDFSorted(b *testing.B) { benchQueue(b, NewSortedEDF()) }
func BenchmarkFCFS(b *testing.B)      { benchQueue(b, NewFCFS()) }

func TestMeteredCountsAndDepth(t *testing.T) {
	m := NewMetered(NewEDF())
	if m.Depth() != 0 || m.MaxDepth() != 0 {
		t.Error("fresh meter not zero")
	}
	mk := func(kind Kind, d time.Duration) Job {
		return Job{Kind: kind, Topic: 1, Deadline: d}
	}
	m.Push(mk(KindDispatch, 3*time.Millisecond))
	m.Push(mk(KindReplicate, 1*time.Millisecond))
	m.Push(mk(KindDispatch, 2*time.Millisecond))
	if m.Depth() != 3 || m.MaxDepth() != 3 || m.Len() != 3 {
		t.Errorf("depth=%d max=%d len=%d, want 3/3/3", m.Depth(), m.MaxDepth(), m.Len())
	}
	if m.Pushes(KindDispatch) != 2 || m.Pushes(KindReplicate) != 1 {
		t.Errorf("pushes = %d/%d, want 2/1", m.Pushes(KindDispatch), m.Pushes(KindReplicate))
	}
	// EDF order survives the decoration.
	j, ok := m.Pop()
	if !ok || j.Kind != KindReplicate {
		t.Errorf("first pop = %+v, want the 1ms replicate job", j)
	}
	if p, ok := m.Peek(); !ok || p.Deadline != 2*time.Millisecond {
		t.Errorf("peek = %+v, want the 2ms job", p)
	}
	m.Pop()
	m.Pop()
	if _, ok := m.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
	if m.Depth() != 0 || m.MaxDepth() != 3 {
		t.Errorf("after drain depth=%d max=%d, want 0/3", m.Depth(), m.MaxDepth())
	}
	if m.Pops(KindDispatch) != 2 || m.Pops(KindReplicate) != 1 {
		t.Errorf("pops = %d/%d, want 2/1", m.Pops(KindDispatch), m.Pops(KindReplicate))
	}
}

// TestMeteredConcurrentReaders drives the queue from one owner goroutine
// while meters are read concurrently, as the admin endpoint does.
func TestMeteredConcurrentReaders(t *testing.T) {
	m := NewMetered(NewFCFS())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			m.Push(Job{Kind: KindDispatch})
			if i%2 == 1 {
				m.Pop()
			}
		}
	}()
	for {
		select {
		case <-done:
			if m.Depth() != 1000 {
				t.Errorf("final depth = %d, want 1000", m.Depth())
			}
			return
		default:
			if d := m.Depth(); d < 0 {
				t.Fatalf("negative depth %d", d)
			}
			_ = m.MaxDepth()
			_ = m.Pushes(KindDispatch)
		}
	}
}
