// Bounded lock-free multi-producer single-consumer ring, plus the
// park/unpark primitive its consumers sleep on.
//
// The broker's publish intake used to hand every frame to its lane under a
// sync.Mutex + sync.Cond pair, so N publisher sessions serialized on one
// lock per lane and every publish paid a broadcast. MPSC replaces that
// handoff with a Vyukov-style sequence-stamped ring: producers claim slots
// with a single CAS on the tail cursor and never block each other or the
// consumer; the consumer pops without any atomics beyond the slot stamps.
// The idle path still sleeps — Parker keeps the "wake only when someone is
// parked" discipline with one atomic load on the producer fast path.
//
// Memory model notes (why there are no missed wakeups and no torn slots):
//
//   - A producer publishes a slot by storing val first, then releasing the
//     slot's sequence stamp (atomic.Uint64.Store has release semantics in
//     the Go memory model). The consumer acquires the stamp before reading
//     val, so val is never read torn.
//   - Park/unpark uses the classic Dekker pattern under Go's sequentially
//     consistent sync/atomic: the producer stores the item (seq stamp) and
//     THEN loads sleepers; the consumer increments sleepers and THEN
//     re-checks ready() under the mutex before sleeping. Whatever order the
//     two sides interleave in, at least one observes the other: either the
//     producer sees sleepers > 0 and broadcasts (the cond mutex is held by
//     the consumer until it is inside Wait, so the broadcast cannot land in
//     the check-to-sleep window), or the consumer's ready() sees the item
//     and it never sleeps.
package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLinePad separates hot cursors so producers hammering tail do not
// false-share with the consumer's head.
type cacheLinePad [64]byte

// mpscSlot pairs a value with its sequence stamp. The stamp encodes the
// slot's state relative to the ring cursors:
//
//	seq == pos          → free, a producer at position pos may claim it
//	seq == pos+1        → full, the consumer at position pos may take it
//	seq <  pos          → still occupied from a lap ago: ring is full
type mpscSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPSC is a bounded lock-free multi-producer single-consumer ring.
//
// Any number of goroutines may call PushInPlace concurrently. PopInto must
// be serialized by the caller — in the broker that serialization already
// exists (the lane worker holds its lane mutex; the flusher owns its notify
// ring via a consume mutex). Empty and Len are safe from any goroutine:
// broker workers probe a lane's intake from park ready() checks while a
// sibling worker may be popping under the lane mutex.
//
// Values are filled in place inside the slot (PushInPlace hands the caller
// a *T to overwrite), so slot-owned storage — e.g. a payload []byte —
// is recycled across laps without allocation, the same discipline as
// ringbuf.PushInPlace.
type MPSC[T any] struct {
	_     cacheLinePad
	tail  atomic.Uint64 // next position to claim; producers CAS this
	_     cacheLinePad
	head  atomic.Uint64 // next position to consume; advanced by one consumer, read anywhere
	_     cacheLinePad
	slots []mpscSlot[T]
	mask  uint64
}

// NewMPSC returns a ring holding up to capacity values. Capacity is rounded
// up to a power of two (minimum 2) so slot indexing is a mask.
func NewMPSC[T any](capacity int) *MPSC[T] {
	c := uint64(2)
	for c < uint64(capacity) {
		c <<= 1
	}
	q := &MPSC[T]{slots: make([]mpscSlot[T], c), mask: c - 1}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the ring's fixed capacity.
func (q *MPSC[T]) Cap() int { return len(q.slots) }

// PushInPlace claims a slot, lets fill overwrite its value in place, and
// publishes it. It returns false without calling fill when the ring is
// full. Safe to call from any number of goroutines.
func (q *MPSC[T]) PushInPlace(fill func(*T)) bool {
	for {
		pos := q.tail.Load()
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// Free: try to claim it. Losing the CAS means another
			// producer took pos; retry at the new tail.
			if q.tail.CompareAndSwap(pos, pos+1) {
				fill(&s.val)
				s.seq.Store(pos + 1) // release: publish to the consumer
				return true
			}
		case seq < pos:
			// The slot still holds the value from one lap ago: full.
			return false
		default:
			// seq > pos: tail moved under us between Load and Load;
			// reread.
		}
	}
}

// PopInto hands the head slot's value to consume and frees the slot. It
// returns false when no published value is ready. Single consumer only.
//
// consume borrows the *T only for the duration of the call; the slot (and
// any storage hanging off it) is recycled for a future push as soon as
// PopInto returns, so consume must copy anything it keeps.
func (q *MPSC[T]) PopInto(consume func(*T)) bool {
	head := q.head.Load()
	s := &q.slots[head&q.mask]
	if s.seq.Load() != head+1 { // acquire: pairs with the producer's store
		return false
	}
	consume(&s.val)
	s.seq.Store(head + q.mask + 1) // free the slot for the next lap
	q.head.Store(head + 1)
	return true
}

// Empty reports whether no published value is ready at the head. Safe from
// any goroutine. For the consumer, a false return guarantees PopInto will
// succeed; a true return is transient whenever a producer is mid-claim, but
// any such producer published its claim with a tail CAS *before* filling,
// and unparks the consumer after publishing — so Empty is safe as a Parker
// ready() check.
func (q *MPSC[T]) Empty() bool {
	head := q.head.Load()
	return q.slots[head&q.mask].seq.Load() != head+1
}

// Len approximates the number of published-but-unconsumed values. Exact
// when quiescent; producers mid-fill are counted as present.
func (q *MPSC[T]) Len() int {
	n := int64(q.tail.Load()) - int64(q.head.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(q.slots)) {
		return len(q.slots)
	}
	return int(n)
}

// Parker puts one consumer goroutine to sleep until a producer signals new
// work, without the producers paying a mutex acquisition when nobody is
// asleep — the common case on a busy ring.
//
// Protocol: the consumer calls Park(ready) when it finds no work; ready is
// re-evaluated under the mutex after advertising the sleeper, closing the
// check-to-sleep race. Producers call Unpark after making work visible; it
// is a single atomic load when no consumer is parked.
type Parker struct {
	mu       sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int32
}

// NewParker returns a ready-to-use Parker.
func NewParker() *Parker {
	p := &Parker{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Park blocks until a producer Unparks, unless ready() already reports
// work. ready is called with the Parker's mutex held. A parked consumer
// can wake spuriously (Broadcast covers every sleeper); callers loop.
func (p *Parker) Park(ready func() bool) {
	p.mu.Lock()
	p.sleepers.Add(1)
	if !ready() {
		p.cond.Wait()
	}
	p.sleepers.Add(-1)
	p.mu.Unlock()
}

// Unpark wakes every parked consumer. When none is parked — the hot-path
// common case — it is one atomic load.
func (p *Parker) Unpark() {
	if p.sleepers.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Spin is a bounded busy-poll helper: it calls ready() up to spins times,
// yielding the processor between probes, and reports whether ready fired.
// Callers opt in for latency-critical deployments (-busy-poll); the default
// path goes straight to Park.
func (p *Parker) Spin(ready func() bool, spins int) bool {
	for i := 0; i < spins; i++ {
		if ready() {
			return true
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	return false
}
