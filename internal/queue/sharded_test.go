package queue

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/spec"
)

// seedFromEnv mirrors faultinject.SeedFromEnv, which this package cannot
// import anymore: faultinject pulls in transport, whose flusher pool is
// built on this package's MPSC ring.
func seedFromEnv(fallback int64) int64 {
	s := os.Getenv("FRAME_CHAOS_SEED")
	if s == "" {
		return fallback
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return fallback
	}
	return v
}

// TestLaneForProperties checks the hash's contract with testing/quick: the
// lane is always in range, the mapping is a pure function of the ID, and
// lane counts ≤ 1 collapse to lane 0.
func TestLaneForProperties(t *testing.T) {
	inRange := func(id uint32, n uint8) bool {
		lanes := int(n%32) + 1
		l := LaneFor(spec.TopicID(id), lanes)
		return l >= 0 && l < lanes
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
	stable := func(id uint32, n uint8) bool {
		lanes := int(n%32) + 1
		return LaneFor(spec.TopicID(id), lanes) == LaneFor(spec.TopicID(id), lanes)
	}
	if err := quick.Check(stable, nil); err != nil {
		t.Error(err)
	}
	collapses := func(id uint32) bool {
		return LaneFor(spec.TopicID(id), 0) == 0 && LaneFor(spec.TopicID(id), 1) == 0 && LaneFor(spec.TopicID(id), -3) == 0
	}
	if err := quick.Check(collapses, nil); err != nil {
		t.Error(err)
	}
}

func TestNewShardedEDFPanicsOnBadLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedEDF(0) did not panic")
		}
	}()
	NewShardedEDF(0)
}

// modelItem mirrors one queued job in the reference model: the EDF contract
// is "earliest absolute deadline first, ties by insertion order".
type modelItem struct {
	job    Job
	insert uint64
}

// modelMin returns the index of the item the lane must pop next, or -1.
func modelMin(lane []modelItem) int {
	best := -1
	for i, it := range lane {
		if best < 0 {
			best = i
			continue
		}
		b := lane[best]
		if it.job.Deadline < b.job.Deadline ||
			(it.job.Deadline == b.job.Deadline && it.insert < b.insert) {
			best = i
		}
	}
	return best
}

// TestShardedEDFMatchesModel drives random push/pop interleavings from a
// seeded generator against a brute-force reference model and asserts, on
// every single pop, that the queue returns exactly the job the model
// predicts. Deadlines are non-decreasing per topic (the shape real traffic
// has: later messages have later created times), so exact-model agreement
// implies both invariants the broker relies on: EDF order within a lane and
// per-topic FIFO.
func TestShardedEDFMatchesModel(t *testing.T) {
	seed := seedFromEnv(0x5eed)
	t.Logf("seed=%d (override with FRAME_CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 150; trial++ {
		lanes := 1 + rng.Intn(8)
		q := NewShardedEDF(lanes)
		model := make([][]modelItem, lanes)
		var inserts uint64
		nextDeadline := make(map[spec.TopicID]time.Duration)
		pushSeq := make(map[spec.TopicID]uint64)
		lastPopSeq := make(map[spec.TopicID]uint64)
		topicSpace := 1 + rng.Intn(40)

		ops := 100 + rng.Intn(400)
		for op := 0; op < ops; op++ {
			switch {
			case rng.Intn(5) < 3: // push
				id := spec.TopicID(rng.Intn(topicSpace))
				// Non-decreasing per-topic deadlines, with frequent exact
				// ties to exercise the insertion-order tie-break.
				d := nextDeadline[id] + time.Duration(rng.Intn(3))*time.Millisecond
				nextDeadline[id] = d
				pushSeq[id]++
				kind := KindDispatch
				if rng.Intn(2) == 0 {
					kind = KindReplicate
				}
				j := Job{Kind: kind, Topic: id, Seq: pushSeq[id], Deadline: d}
				q.Push(j)
				inserts++
				lane := LaneFor(id, lanes)
				model[lane] = append(model[lane], modelItem{job: j, insert: inserts})
			case rng.Intn(2) == 0: // pop one lane
				lane := rng.Intn(lanes)
				got, ok := q.PopLane(lane)
				want := modelMin(model[lane])
				if (want >= 0) != ok {
					t.Fatalf("trial %d: PopLane(%d) ok=%v, model has %d items", trial, lane, ok, len(model[lane]))
				}
				if !ok {
					continue
				}
				exp := model[lane][want]
				if got != exp.job {
					t.Fatalf("trial %d: PopLane(%d) = %+v, model expects %+v", trial, lane, got, exp.job)
				}
				model[lane] = append(model[lane][:want], model[lane][want+1:]...)
				checkFIFO(t, trial, lastPopSeq, got)
			default: // global pop: earliest deadline anywhere, ties by lane
				got, ok := q.Pop()
				bestLane, bestIdx := -1, -1
				for l := range model {
					i := modelMin(model[l])
					if i < 0 {
						continue
					}
					if bestLane < 0 || model[l][i].job.Deadline < model[bestLane][bestIdx].job.Deadline {
						bestLane, bestIdx = l, i
					}
				}
				if (bestLane >= 0) != ok {
					t.Fatalf("trial %d: Pop ok=%v, model disagrees", trial, ok)
				}
				if !ok {
					continue
				}
				exp := model[bestLane][bestIdx]
				if got != exp.job {
					t.Fatalf("trial %d: Pop = %+v, model expects %+v", trial, got, exp.job)
				}
				model[bestLane] = append(model[bestLane][:bestIdx], model[bestLane][bestIdx+1:]...)
				checkFIFO(t, trial, lastPopSeq, got)
			}
			// Length bookkeeping must agree at every step.
			total := 0
			for l := range model {
				if q.LenLane(l) != len(model[l]) {
					t.Fatalf("trial %d: LenLane(%d) = %d, model %d", trial, l, q.LenLane(l), len(model[l]))
				}
				total += len(model[l])
			}
			if q.Len() != total {
				t.Fatalf("trial %d: Len = %d, model %d", trial, q.Len(), total)
			}
		}

		// Drain each lane: the remaining pops must come out in non-decreasing
		// deadline order — the EDF-within-lane invariant stated directly.
		for l := 0; l < lanes; l++ {
			last := time.Duration(-1)
			for {
				j, ok := q.PopLane(l)
				if !ok {
					break
				}
				if j.Deadline < last {
					t.Fatalf("trial %d: lane %d popped deadline %v after %v", trial, l, j.Deadline, last)
				}
				last = j.Deadline
				checkFIFO(t, trial, lastPopSeq, j)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d jobs left after drain", trial, q.Len())
		}
	}
}

// checkFIFO asserts per-topic FIFO: with per-topic monotone deadlines, jobs
// of one topic must pop in push order.
func checkFIFO(t *testing.T, trial int, lastPopSeq map[spec.TopicID]uint64, j Job) {
	t.Helper()
	if prev := lastPopSeq[j.Topic]; j.Seq <= prev {
		t.Fatalf("trial %d: topic %d popped seq %d after seq %d (FIFO violated)", trial, j.Topic, j.Seq, prev)
	}
	lastPopSeq[j.Topic] = j.Seq
}

// TestShardedEDFRouting checks that Push lands every job in LaneFor's lane
// and PeekLane only ever surfaces that lane's topics.
func TestShardedEDFRouting(t *testing.T) {
	seed := seedFromEnv(7)
	t.Logf("seed=%d (override with FRAME_CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	const lanes = 5
	q := NewShardedEDF(lanes)
	perLane := make([]int, lanes)
	for i := 0; i < 500; i++ {
		id := spec.TopicID(rng.Intn(1000))
		q.Push(Job{Kind: KindDispatch, Topic: id, Seq: uint64(i), Deadline: time.Duration(rng.Intn(100))})
		perLane[LaneFor(id, lanes)]++
	}
	for l := 0; l < lanes; l++ {
		if got := q.LenLane(l); got != perLane[l] {
			t.Fatalf("lane %d holds %d jobs, want %d", l, got, perLane[l])
		}
		for {
			j, ok := q.PopLane(l)
			if !ok {
				break
			}
			if want := LaneFor(j.Topic, lanes); want != l {
				t.Fatalf("topic %d found in lane %d, routes to %d", j.Topic, l, want)
			}
		}
	}
}

// TestMeteredLaneDepth checks that the Metered wrapper tracks per-lane
// depth through Push, PopLane, and whole-queue Pop, and degrades to the
// global depth over a scalar queue.
func TestMeteredLaneDepth(t *testing.T) {
	m := NewMetered(NewShardedEDF(4))
	if m.Lanes() != 4 {
		t.Fatalf("Lanes = %d, want 4", m.Lanes())
	}
	var want [4]int64
	for i := 0; i < 100; i++ {
		id := spec.TopicID(i)
		m.Push(Job{Kind: KindDispatch, Topic: id, Seq: 1, Deadline: time.Duration(i)})
		want[LaneFor(id, 4)]++
	}
	for l := 0; l < 4; l++ {
		if got := m.LaneDepth(l); got != want[l] {
			t.Fatalf("LaneDepth(%d) = %d, want %d", l, got, want[l])
		}
	}
	if j, ok := m.PopLane(2); !ok || LaneFor(j.Topic, 4) != 2 {
		t.Fatalf("PopLane(2) = %+v, %v", j, ok)
	}
	want[2]--
	if j, ok := m.Pop(); ok {
		want[LaneFor(j.Topic, 4)]--
	} else {
		t.Fatal("Pop on non-empty metered queue failed")
	}
	var total int64
	for l := 0; l < 4; l++ {
		if got := m.LaneDepth(l); got != want[l] {
			t.Fatalf("after pops LaneDepth(%d) = %d, want %d", l, got, want[l])
		}
		total += want[l]
	}
	if m.Depth() != total {
		t.Fatalf("Depth = %d, want %d", m.Depth(), total)
	}

	scalar := NewMetered(NewEDF())
	if scalar.Lanes() != 1 {
		t.Fatalf("scalar Lanes = %d, want 1", scalar.Lanes())
	}
	scalar.Push(Job{Kind: KindDispatch, Topic: 9, Seq: 1})
	if scalar.LaneDepth(0) != scalar.Depth() || scalar.Depth() != 1 {
		t.Fatalf("scalar LaneDepth = %d, Depth = %d, want 1", scalar.LaneDepth(0), scalar.Depth())
	}
}
