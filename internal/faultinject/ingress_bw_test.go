package faultinject

import (
	"testing"
	"time"
)

// TestIngressBandwidth pins that a bandwidth cap paces the ingress
// direction (listener→dialer, applied at the dialer's read side), not
// just egress writes.
func TestIngressBandwidth(t *testing.T) {
	n, cli, srv := pair(t, 99)
	n.SetLink("srv", "cli", Faults{BandwidthBps: 8 << 10})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := readFrame(cli); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	}()
	start := time.Now()
	body := make([]byte, 1024)
	for i := 0; i < 10; i++ {
		if _, err := srv.Write(frame(body)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	<-done
	// 10 KiB at 8 KiB/s => ~1.25s; require well over half.
	if elapsed := time.Since(start); elapsed < 600*time.Millisecond {
		t.Fatalf("10KiB crossed an 8KiB/s ingress link in %v", elapsed)
	}
}
