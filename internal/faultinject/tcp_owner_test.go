package faultinject

import (
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestTCPOwnerResolution pins the ephemeral-port case: a listener bound
// to 127.0.0.1:0 must still be attributed to its registered node so link
// rules match conns dialed to the resolved address.
func TestTCPOwnerResolution(t *testing.T) {
	n := New(&transport.TCP{}, 7)
	ln, err := n.Node("srv").Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	n.SetLink("srv", "cli", Faults{Latency: 200 * time.Millisecond})
	cli, err := n.Node("cli").Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted
	defer srv.Close()
	start := time.Now()
	if _, err := srv.Write(frame([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(cli); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("ingress frame arrived after %v — owner not resolved, faults bypassed", d)
	}
}
