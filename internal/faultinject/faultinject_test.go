package faultinject

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/transport"
)

// frame builds one length-prefixed wire frame around payload.
func frame(payload []byte) []byte {
	b := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}

// readFrame reads one length-prefixed frame's payload from r.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// pair wires a cli→srv connection through a fresh fault network over Mem and
// returns both ends plus the network.
func pair(t *testing.T, seed int64) (*Network, net.Conn, net.Conn) {
	t.Helper()
	n := New(transport.NewMem(), seed)
	ln, err := n.Node("srv").Listen("srv")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	cli, err := n.Node("cli").Dial("srv")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	srv := <-accepted
	t.Cleanup(func() { srv.Close() })
	return n, cli, srv
}

func TestPassthroughBothDirections(t *testing.T) {
	_, cli, srv := pair(t, 1)
	// Egress: cli → srv.
	if _, err := cli.Write(frame([]byte("ping"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readFrame(srv)
	if err != nil || string(got) != "ping" {
		t.Fatalf("srv read = %q, %v", got, err)
	}
	// Ingress: srv → cli flows through the injector's read path.
	if _, err := srv.Write(frame([]byte("pong"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err = readFrame(cli)
	if err != nil || string(got) != "pong" {
		t.Fatalf("cli read = %q, %v", got, err)
	}
}

func TestLatencyIsPipelined(t *testing.T) {
	const lat = 60 * time.Millisecond
	n, cli, srv := pair(t, 2)
	n.SetLink("cli", "srv", Faults{Latency: lat})

	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := cli.Write(frame([]byte{byte(i)})); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	var first, last time.Time
	for i := 0; i < 3; i++ {
		if _, err := readFrame(srv); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if i == 0 {
			first = time.Now()
		}
		last = time.Now()
	}
	if d := first.Sub(start); d < lat {
		t.Fatalf("first frame arrived after %v, want >= %v", d, lat)
	}
	// Frames pipeline: back-to-back sends share the delay instead of
	// serializing behind it (serialized would be >= 2*lat apart).
	if gap := last.Sub(first); gap > lat/2 {
		t.Fatalf("frames serialized behind latency: first-to-last gap %v", gap)
	}
}

func TestIngressLatency(t *testing.T) {
	const lat = 50 * time.Millisecond
	n, cli, srv := pair(t, 3)
	n.SetLink("srv", "cli", Faults{Latency: lat})

	start := time.Now()
	if _, err := srv.Write(frame([]byte("x"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readFrame(cli); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("ingress frame arrived after %v, want >= %v", d, lat)
	}
}

// dropRun sends count frames through a cli→srv link with the given drop rate
// and returns which frame indices survived.
func dropRun(t *testing.T, seed int64, count int, rate float64) map[int]bool {
	t.Helper()
	n, cli, srv := pair(t, seed)
	n.SetLink("cli", "srv", Faults{Drop: rate})
	done := make(chan map[int]bool, 1)
	go func() {
		got := make(map[int]bool)
		for {
			p, err := readFrame(srv)
			if err != nil {
				done <- got
				return
			}
			got[int(binary.LittleEndian.Uint16(p))] = true
		}
	}()
	for i := 0; i < count; i++ {
		p := make([]byte, 2)
		binary.LittleEndian.PutUint16(p, uint16(i))
		if _, err := cli.Write(frame(p)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	cli.Close() // drains, then EOFs the server reader
	select {
	case got := <-done:
		return got
	case <-time.After(5 * time.Second):
		t.Fatal("server reader did not finish")
		return nil
	}
}

func TestDropsAreDeterministicPerSeed(t *testing.T) {
	const count = 200
	a := dropRun(t, 42, count, 0.3)
	b := dropRun(t, 42, count, 0.3)
	if len(a) == 0 || len(a) == count {
		t.Fatalf("drop rate 0.3 delivered %d/%d frames — lottery not working", len(a), count)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered different frame counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !b[i] {
			t.Fatalf("same seed diverged: frame %d delivered in run A only", i)
		}
	}
	c := dropRun(t, 43, count, 0.3)
	same := true
	if len(c) != len(a) {
		same = false
	} else {
		for i := range a {
			if !c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop pattern (200 frames)")
	}
}

func TestPartitionHoldsThenHeals(t *testing.T) {
	n, cli, srv := pair(t, 4)
	n.Partition("cut", []string{"cli"}, []string{"srv"})

	if _, err := cli.Write(frame([]byte("held"))); err != nil {
		t.Fatalf("write during partition should buffer, got %v", err)
	}
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := readFrame(srv); err == nil {
		t.Fatal("frame crossed a raised partition")
	}
	srv.SetReadDeadline(time.Time{})

	if got := n.Stats().FramesHeld.Load(); got == 0 {
		t.Fatal("expected FramesHeld > 0 while partitioned")
	}
	n.Heal("cut")
	got, err := readFrame(srv)
	if err != nil || string(got) != "held" {
		t.Fatalf("post-heal read = %q, %v", got, err)
	}
}

func TestPartitionRefusesNewDials(t *testing.T) {
	n, _, _ := pair(t, 5)
	n.Partition("cut", []string{"cli"}, []string{"srv"})
	if _, err := n.Node("cli").Dial("srv"); !errors.Is(err, transport.ErrConnRefused) {
		t.Fatalf("dial across partition = %v, want ErrConnRefused", err)
	}
	if n.Stats().DialsRefused.Load() == 0 {
		t.Fatal("expected DialsRefused > 0")
	}
}

func TestStallHalfOpens(t *testing.T) {
	n, cli, srv := pair(t, 6)
	n.SetLink("cli", "srv", Faults{Stall: true})

	if _, err := cli.Write(frame([]byte("stalled"))); err != nil {
		t.Fatalf("write during stall should succeed, got %v", err)
	}
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := readFrame(srv); err == nil {
		t.Fatal("frame delivered through a stalled link")
	}
	srv.SetReadDeadline(time.Time{})

	n.ClearLink("cli", "srv")
	got, err := readFrame(srv)
	if err != nil || string(got) != "stalled" {
		t.Fatalf("post-stall read = %q, %v", got, err)
	}
}

func TestBandwidthCapPacesDelivery(t *testing.T) {
	const (
		bps       = 512 << 10
		frameBody = 16 << 10
		frames    = 8
	)
	n, cli, srv := pair(t, 7)
	n.SetLink("cli", "srv", Faults{BandwidthBps: bps})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			if _, err := readFrame(srv); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	}()
	start := time.Now()
	body := make([]byte, frameBody)
	for i := 0; i < frames; i++ {
		if _, err := cli.Write(frame(body)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	<-done
	// 7 paced gaps of (16KiB+4)/512KiB/s ≈ 31ms each; require well over half.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("8 × 16KiB crossed a 512KiB/s link in %v — pacing not applied", elapsed)
	}
}

func TestResetLinkKillsConn(t *testing.T) {
	n, cli, srv := pair(t, 8)
	if got := n.ResetLink("cli", "srv"); got != 1 {
		t.Fatalf("ResetLink reset %d conns, want 1", got)
	}
	if _, err := cli.Write(frame([]byte("x"))); err == nil {
		t.Fatal("write on reset conn succeeded")
	}
	srv.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := readFrame(srv); err == nil {
		t.Fatal("read on peer of reset conn succeeded")
	}
	if n.ActiveConns() != 0 {
		t.Fatalf("ActiveConns = %d after reset, want 0", n.ActiveConns())
	}
	if n.Stats().Resets.Load() != 1 {
		t.Fatalf("Resets = %d, want 1", n.Stats().Resets.Load())
	}
}

func TestResetNodeMatchesEitherRole(t *testing.T) {
	n, _, _ := pair(t, 9)
	if got := n.ResetNode("srv"); got != 1 {
		t.Fatalf("ResetNode(srv) reset %d conns, want 1 (listener role)", got)
	}
}

func TestReadDeadline(t *testing.T) {
	_, cli, _ := pair(t, 10)
	cli.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := readFrame(cli)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline = %v, want ErrDeadlineExceeded", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline error %v is not a net.Error timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline wait far exceeded the deadline")
	}
	// A cleared deadline makes the conn usable again.
	cli.SetReadDeadline(time.Time{})
}

func TestCloseDrainsInFlight(t *testing.T) {
	n, cli, srv := pair(t, 11)
	n.SetLink("cli", "srv", Faults{Latency: 30 * time.Millisecond})
	if _, err := cli.Write(frame([]byte("last words"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Read concurrently: Mem conns are synchronous pipes, so the drain in
	// Close can only complete while the peer is consuming.
	type result struct {
		got []byte
		err error
	}
	read := make(chan result, 1)
	go func() {
		got, err := readFrame(srv)
		read <- result{got, err}
	}()
	cli.Close()
	r := <-read
	if r.err != nil || string(r.got) != "last words" {
		t.Fatalf("read after close = %q, %v — in-flight frame lost", r.got, r.err)
	}
	if _, err := readFrame(srv); err == nil {
		t.Fatal("expected EOF after drain")
	}
}

func TestWildcardPrecedence(t *testing.T) {
	n := New(transport.NewMem(), 12)
	n.SetLink(Wildcard, Wildcard, Faults{Latency: 1 * time.Millisecond})
	n.SetLink("cli", Wildcard, Faults{Latency: 2 * time.Millisecond})
	n.SetLink("cli", "srv", Faults{Latency: 3 * time.Millisecond})
	if got := n.faultsFor("cli", "srv").Latency; got != 3*time.Millisecond {
		t.Fatalf("exact rule lost to wildcard: %v", got)
	}
	if got := n.faultsFor("cli", "other").Latency; got != 2*time.Millisecond {
		t.Fatalf("from→* rule lost: %v", got)
	}
	if got := n.faultsFor("other", "srv").Latency; got != 1*time.Millisecond {
		t.Fatalf("*→* fallback lost: %v", got)
	}
	n.ClearAllFaults()
	if !n.faultsFor("cli", "srv").IsZero() {
		t.Fatal("ClearAllFaults left rules behind")
	}
}

func TestGaugesRender(t *testing.T) {
	n, cli, srv := pair(t, 13)
	if _, err := cli.Write(frame([]byte("x"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readFrame(srv); err != nil {
		t.Fatalf("read: %v", err)
	}
	// The forwarded counter ticks just after the peer's read completes; give
	// the pump a moment.
	names := make(map[string]float64)
	deadline := time.Now().Add(2 * time.Second)
	for {
		names = make(map[string]float64)
		for _, s := range n.Gauges() {
			names[s.Name] = s.Value
		}
		if names["frame_faultinject_frames_forwarded_total"] >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if names["frame_faultinject_frames_forwarded_total"] < 1 {
		t.Fatalf("frames_forwarded gauge = %v, want >= 1", names["frame_faultinject_frames_forwarded_total"])
	}
	if names["frame_faultinject_active_conns"] != 1 {
		t.Fatalf("active_conns gauge = %v, want 1", names["frame_faultinject_active_conns"])
	}
}

func TestSeedFromEnv(t *testing.T) {
	t.Setenv("FRAME_CHAOS_SEED", "")
	if got := SeedFromEnv(99); got != 99 {
		t.Fatalf("unset env: got %d, want fallback 99", got)
	}
	t.Setenv("FRAME_CHAOS_SEED", "12345")
	if got := SeedFromEnv(99); got != 12345 {
		t.Fatalf("decimal env: got %d", got)
	}
	t.Setenv("FRAME_CHAOS_SEED", "0xbeef")
	if got := SeedFromEnv(99); got != 0xbeef {
		t.Fatalf("hex env: got %d", got)
	}
	t.Setenv("FRAME_CHAOS_SEED", "not-a-number")
	if got := SeedFromEnv(99); got != 99 {
		t.Fatalf("garbage env: got %d, want fallback", got)
	}
}

func TestWriteBufferBytesBackpressures(t *testing.T) {
	n, cli, srv := pair(t, 11)
	n.SetLink("cli", "srv", Faults{Stall: true, WriteBufferBytes: 256})

	// Each frame is 104 bytes on the wire; the pump holds the first one
	// mid-delivery (stalled link), so the shrunken 256-byte queue admits a
	// few more and then blocks the writer. The write deadline turns the
	// block into the same error a full kernel socket buffer would produce.
	payload := make([]byte, 100)
	cli.SetWriteDeadline(time.Now().Add(80 * time.Millisecond))
	writes := 0
	var werr error
	for i := 0; i < 32; i++ {
		if _, werr = cli.Write(frame(payload)); werr != nil {
			break
		}
		writes++
	}
	if !errors.Is(werr, os.ErrDeadlineExceeded) {
		t.Fatalf("write past the shrunken buffer = %v, want os.ErrDeadlineExceeded", werr)
	}
	if writes == 0 || writes > 8 {
		t.Fatalf("%d writes fit a 256-byte buffer, want a small handful", writes)
	}
	cli.SetWriteDeadline(time.Time{})

	// Clearing the program restores the stall and the default bound; every
	// frame admitted before the backpressure kicked in arrives intact.
	n.ClearLink("cli", "srv")
	for i := 0; i < writes; i++ {
		if _, err := readFrame(srv); err != nil {
			t.Fatalf("post-heal read %d: %v", i, err)
		}
	}
}
