// Package faultinject wraps a transport.Network with deterministic,
// scriptable link faults, so the real TCP stack (and the in-process Mem
// network) can be exercised under the degraded conditions FRAME's
// guarantees are actually about: added latency and jitter, bandwidth caps,
// frame-boundary drops, connection resets, half-open stalls, and named
// partitions that can be raised and healed at runtime.
//
// Topology model: every endpoint takes its transport.Network from
// Node(name), which tags listeners and dials with that node's name. A
// dialed connection then belongs to a directed link pair — (dialer node →
// listener's node) for its write side, the reverse for its read side — and
// each direction consults the fault program installed for it with SetLink.
// Faults are applied at frame granularity: the injector parses the
// transport's uint32-length-prefixed framing out of the byte stream, so a
// dropped frame removes exactly one wire frame and never corrupts the
// stream around it.
//
// Determinism: all random decisions (jitter samples, drop lotteries) come
// from a per-link-connection rand seeded from the Network seed, the link
// name, and the link-local dial ordinal. Given the same seed and the same
// scenario script, the fate of the n-th frame on a given link is identical
// across runs — which is what makes a failed chaos run replayable from the
// single FRAME_CHAOS_SEED the runner prints.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/transport"
)

// Wildcard matches any node name in a SetLink selector.
const Wildcard = "*"

// Faults is the fault program of one link direction. The zero value is a
// transparent link.
type Faults struct {
	// Latency is added one-way delay per frame. Frames are pipelined: two
	// frames sent 1ms apart both arrive Latency later, still 1ms apart.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) sample on top of Latency per frame.
	Jitter time.Duration
	// BandwidthBps caps the direction's throughput in bytes/second by
	// pacing frame delivery; zero means unlimited.
	BandwidthBps int64
	// Drop is the per-frame drop probability in [0, 1]. Dropped frames
	// vanish at a frame boundary; the stream around them stays intact.
	Drop float64
	// Stall half-opens the direction: the connection stays up and writes
	// succeed, but no frame is delivered until the stall clears. Held
	// frames are delivered (in order) once it does.
	Stall bool
	// WriteBufferBytes shrinks the direction's queued-byte bound below the
	// default 1 MiB (values above it are clamped), modelling a small socket
	// send buffer: a stalled or slow link back-pressures the writer after
	// this many undelivered bytes. Zero keeps the default.
	WriteBufferBytes int
}

// IsZero reports a transparent fault program.
func (f Faults) IsZero() bool { return f == Faults{} }

// Stats counts injector activity across the whole network. All fields are
// atomics, safe to read while scenarios run.
type Stats struct {
	FramesForwarded atomic.Uint64 // frames delivered (after any delay)
	BytesForwarded  atomic.Uint64 // bytes delivered, including headers
	FramesDropped   atomic.Uint64 // frames removed by the drop lottery
	FramesHeld      atomic.Uint64 // frames held at least once by a partition or stall
	Resets          atomic.Uint64 // connections reset by ResetLink/ResetNode
	DialsRefused    atomic.Uint64 // dials refused because the link was partitioned
}

// Network is a fault-injecting transport.Network decorator. Create with
// New, hand each endpoint a Node view, and drive faults at runtime with
// SetLink / Partition / Heal / ResetLink.
type Network struct {
	inner transport.Network
	seed  int64

	mu     sync.Mutex
	owners map[string]string    // listen addr -> node name
	rules  map[linkKey]Faults   // directed fault programs
	parts  map[string]partition // raised partitions by name
	conns  map[*faultConn]bool  // live injected conns
	dials  map[linkKey]int64    // per-link dial ordinal (rng stream id)

	stats Stats
}

type linkKey struct{ from, to string }

func (k linkKey) String() string { return k.from + "->" + k.to }

// partition is a named bidirectional cut between two node groups.
type partition struct{ a, b map[string]bool }

// New wraps inner with fault injection. All randomized fault decisions
// derive from seed (see the package comment on determinism).
func New(inner transport.Network, seed int64) *Network {
	return &Network{
		inner:  inner,
		seed:   seed,
		owners: make(map[string]string),
		rules:  make(map[linkKey]Faults),
		parts:  make(map[string]partition),
		conns:  make(map[*faultConn]bool),
		dials:  make(map[linkKey]int64),
	}
}

// Seed returns the seed every fault decision derives from.
func (n *Network) Seed() int64 { return n.seed }

// Stats exposes the injector's counters.
func (n *Network) Stats() *Stats { return &n.stats }

// Node returns the transport.Network view for one named node: listeners
// register the node as owner of their bound address, and dials tag the
// resulting connection with the (node → owner) link.
func (n *Network) Node(name string) transport.Network { return &nodeView{n: n, name: name} }

// SetLink installs the fault program for the directed link from → to,
// replacing any previous program. Wildcard ("*") matches any node; the most
// specific selector wins (from→to, then from→*, then *→to, then *→*).
// Takes effect immediately, including on established connections.
func (n *Network) SetLink(from, to string, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules[linkKey{from, to}] = f
}

// ClearLink removes the directed fault program from → to.
func (n *Network) ClearLink(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.rules, linkKey{from, to})
}

// ClearAllFaults removes every fault program and heals every partition,
// leaving connections (and any frames they held) intact; held frames
// deliver promptly afterwards. The chaos runner calls this before draining.
func (n *Network) ClearAllFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = make(map[linkKey]Faults)
	n.parts = make(map[string]partition)
}

// Partition raises (or replaces) a named bidirectional cut: every frame
// between a node in group a and a node in group b is held until the
// partition heals, and new dials across the cut are refused. Raising a
// partition does not reset established connections — the links look
// half-open, exactly like a real network partition.
func (n *Network) Partition(name string, a, b []string) {
	p := partition{a: make(map[string]bool, len(a)), b: make(map[string]bool, len(b))}
	for _, x := range a {
		p.a[x] = true
	}
	for _, x := range b {
		p.b[x] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[name] = p
}

// Heal removes a named partition; frames held behind it deliver in order.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, name)
}

// Partitioned reports whether any raised partition severs from → to.
func (n *Network) Partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.severedLocked(from, to)
}

func (n *Network) severedLocked(from, to string) bool {
	for _, p := range n.parts {
		if (p.a[from] && p.b[to]) || (p.b[from] && p.a[to]) {
			return true
		}
	}
	return false
}

// faultsFor resolves the current program for one direction.
func (n *Network) faultsFor(from, to string) Faults {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []linkKey{{from, to}, {from, Wildcard}, {Wildcard, to}, {Wildcard, Wildcard}} {
		if f, ok := n.rules[k]; ok {
			return f
		}
	}
	return Faults{}
}

// ResetLink abruptly closes every live connection dialed from `from` to
// `to` (TCP connections get a best-effort RST via SO_LINGER 0), modelling a
// middlebox killing flows. Returns how many connections it reset.
func (n *Network) ResetLink(from, to string) int {
	return n.reset(func(c *faultConn) bool { return c.from == from && c.to == to })
}

// ResetNode abruptly closes every live connection touching the node in
// either role — the network face of a fail-stop crash.
func (n *Network) ResetNode(name string) int {
	return n.reset(func(c *faultConn) bool { return c.from == name || c.to == name })
}

func (n *Network) reset(match func(*faultConn) bool) int {
	n.mu.Lock()
	victims := make([]*faultConn, 0, len(n.conns))
	for c := range n.conns {
		if match(c) {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.reset()
		n.stats.Resets.Add(1)
	}
	return len(victims)
}

// ActiveConns returns how many injected connections are currently live.
func (n *Network) ActiveConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

func (n *Network) untrack(c *faultConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, c)
}

// Gauges renders the injector's counters as obsv samples, for wiring into a
// broker admin endpoint's /metrics via broker.Options.ExtraGauges.
func (n *Network) Gauges() []obsv.Sample {
	n.mu.Lock()
	active := len(n.conns)
	partsUp := len(n.parts)
	n.mu.Unlock()
	return []obsv.Sample{
		{Name: "frame_faultinject_frames_forwarded_total", Counter: true,
			Value: float64(n.stats.FramesForwarded.Load()), Help: "Frames the fault injector delivered."},
		{Name: "frame_faultinject_bytes_forwarded_total", Counter: true,
			Value: float64(n.stats.BytesForwarded.Load()), Help: "Bytes the fault injector delivered."},
		{Name: "frame_faultinject_frames_dropped_total", Counter: true,
			Value: float64(n.stats.FramesDropped.Load()), Help: "Frames removed by the injected drop lottery."},
		{Name: "frame_faultinject_frames_held_total", Counter: true,
			Value: float64(n.stats.FramesHeld.Load()), Help: "Frames held at least once by a partition or stall."},
		{Name: "frame_faultinject_resets_total", Counter: true,
			Value: float64(n.stats.Resets.Load()), Help: "Connections abruptly reset by the injector."},
		{Name: "frame_faultinject_dials_refused_total", Counter: true,
			Value: float64(n.stats.DialsRefused.Load()), Help: "Dials refused across a raised partition."},
		{Name: "frame_faultinject_active_conns",
			Value: float64(active), Help: "Live fault-injected connections."},
		{Name: "frame_faultinject_partitions_active",
			Value: float64(partsUp), Help: "Raised named partitions."},
	}
}

// connSeed derives the deterministic rng seed for the n-th connection on a
// link: network seed ⊕ link-name hash, advanced by the dial ordinal.
func (n *Network) connSeed(k linkKey, ordinal int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(k.String()))
	const golden = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	return n.seed ^ int64(h.Sum64()) ^ (ordinal * golden)
}

// nodeView is the per-node transport.Network facade.
type nodeView struct {
	n    *Network
	name string
}

var _ transport.Network = (*nodeView)(nil)

// Listen opens a listener on the inner network and registers this node as
// the owner of the bound address, so dials to it resolve their link.
func (v *nodeView) Listen(addr string) (net.Listener, error) {
	ln, err := v.n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	v.n.mu.Lock()
	v.n.owners[ln.Addr().String()] = v.name
	v.n.mu.Unlock()
	return ln, nil
}

// Dial connects through the inner network and wraps the connection with the
// (dialer → owner) link's fault programs. Dials across a raised partition
// are refused, like SYNs that never arrive.
func (v *nodeView) Dial(addr string) (net.Conn, error) {
	n := v.n
	n.mu.Lock()
	to, known := n.owners[addr]
	if !known {
		to = addr // unregistered target: the address itself names the node
	}
	k := linkKey{v.name, to}
	if n.severedLocked(v.name, to) {
		n.mu.Unlock()
		n.stats.DialsRefused.Add(1)
		return nil, fmt.Errorf("faultinject: %s partitioned: %w", k, transport.ErrConnRefused)
	}
	ordinal := n.dials[k]
	n.dials[k] = ordinal + 1
	n.mu.Unlock()

	nc, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := newFaultConn(n, nc, v.name, to, n.connSeed(k, ordinal))
	n.mu.Lock()
	n.conns[c] = true
	n.mu.Unlock()
	return c, nil
}

// SeedFromEnv returns the chaos seed: the value of FRAME_CHAOS_SEED when it
// is set and parses (decimal, or hex with an 0x prefix), the fallback
// otherwise. Every randomized chaos/property test seeds from this so any CI
// failure is locally replayable by exporting the seed the test logged.
func SeedFromEnv(fallback int64) int64 {
	s := os.Getenv("FRAME_CHAOS_SEED")
	if s == "" {
		return fallback
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return fallback
	}
	return v
}
