package faultinject

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Per-direction memory bounds: a direction holds at most this many queued
// (not yet delivered) bytes before the producer blocks, and the read buffer
// holds at most this many delivered-but-unread bytes. Both model the finite
// socket buffers of a real stack, so a partition or stall back-pressures
// writers the way a wedged TCP connection would.
const (
	maxQueuedBytes = 1 << 20
	maxReadBuffer  = 1 << 20
)

// holdPollInterval is how often a pump re-checks a raised partition or
// stall while holding a frame.
const holdPollInterval = 200 * time.Microsecond

// closeDrainWait bounds how long a graceful Close waits for already-written
// frames to finish their injected delay before tearing the connection down.
const closeDrainWait = 250 * time.Millisecond

// faultConn is one fault-injected connection. The write side parses the
// transport's length-prefixed framing out of the byte stream and runs each
// frame through the egress direction's fault program before it reaches the
// inner connection; a reader goroutine does the same for arriving frames on
// the ingress direction, delivering into an in-memory read buffer that
// Read consumes (with full deadline support, since the failure detectors
// rely on read timeouts).
type faultConn struct {
	n     *Network
	inner net.Conn
	from  string // dialer's node
	to    string // listener's node

	done     chan struct{}
	downFlag atomic.Bool
	downOnce sync.Once

	eg *direction // from → to, delivers to inner.Write
	in *direction // to → from, delivers into the read buffer

	// Write-side framing state, guarded by wmu.
	wmu    sync.Mutex
	wparse []byte
	wraw   bool // framing lost; forward chunks as pseudo-frames
	werr   error

	// Read buffer, guarded by rmu.
	rmu       sync.Mutex
	rcond     *sync.Cond
	rbuf      []byte
	rerr      error
	rdeadline time.Time

	// Write deadline, guarded by wdmu (enqueue waits consult it).
	wdmu      sync.Mutex
	wdeadline time.Time
}

// qframe is one parsed frame awaiting delivery.
type qframe struct {
	data []byte
	at   time.Time // earliest delivery (latency + jitter, FIFO-floored)
	drop float64   // pre-drawn drop lottery sample
}

// direction is one half of a link: a bounded queue of parsed frames between
// a producer (Write, or the ingress reader goroutine) and a pump goroutine
// that applies partitions, stalls, drops, and bandwidth pacing at delivery
// time. Latency and jitter are sampled at enqueue time so frames pipeline —
// a 10 ms link delays every frame 10 ms, it does not serialize them.
type direction struct {
	c        *faultConn
	from, to string
	deliver  func([]byte) error

	mu       sync.Mutex
	cond     *sync.Cond
	rng      *rand.Rand
	queue    []qframe
	queued   int
	inflight bool // pump holds a popped frame not yet delivered
	srcDone  bool
	srcErr   error
	lastAt   time.Time
	nextSend time.Time // bandwidth pacing floor
	onDrain  func(err error)
}

func newFaultConn(n *Network, inner net.Conn, from, to string, seed int64) *faultConn {
	c := &faultConn{
		n:     n,
		inner: inner,
		from:  from,
		to:    to,
		done:  make(chan struct{}),
	}
	c.rcond = sync.NewCond(&c.rmu)
	c.eg = &direction{
		c: c, from: from, to: to,
		rng:     rand.New(rand.NewSource(seed)),
		deliver: func(b []byte) error { _, err := inner.Write(b); return err },
		onDrain: func(error) {},
	}
	c.in = &direction{
		c: c, from: to, to: from,
		rng:     rand.New(rand.NewSource(seed + 1)),
		deliver: c.deliverRead,
		onDrain: c.failRead,
	}
	c.eg.cond = sync.NewCond(&c.eg.mu)
	c.in.cond = sync.NewCond(&c.in.mu)
	go c.eg.pump()
	go c.in.pump()
	go c.readLoop()
	return c
}

func (c *faultConn) down() bool { return c.downFlag.Load() }

// teardown stops both pumps, drops anything still queued, and closes the
// inner connection. Idempotent.
func (c *faultConn) teardown() {
	c.downOnce.Do(func() {
		c.downFlag.Store(true)
		close(c.done)
		c.eg.wake()
		c.in.wake()
		c.rmu.Lock()
		if c.rerr == nil {
			c.rerr = net.ErrClosed
		}
		c.rcond.Broadcast()
		c.rmu.Unlock()
		c.inner.Close()
		c.n.untrack(c)
	})
}

// Close stops accepting writes, gives frames already written a bounded
// chance to finish their injected delay (so an orderly shutdown does not
// eat in-flight traffic), then tears the connection down.
func (c *faultConn) Close() error {
	c.wmu.Lock()
	if c.werr == nil {
		c.werr = fmt.Errorf("faultinject: write on closed connection: %w", net.ErrClosed)
	}
	c.wmu.Unlock()
	c.eg.finishSrc(nil)
	deadline := time.Now().Add(closeDrainWait)
	for time.Now().Before(deadline) && !c.eg.drained() && !c.down() {
		time.Sleep(holdPollInterval)
	}
	c.teardown()
	return nil
}

// reset models an abrupt connection kill: queued frames are dropped and TCP
// connections get a best-effort RST (SO_LINGER 0) so the peer sees a hard
// failure, not a clean EOF.
func (c *faultConn) reset() {
	if lc, ok := c.inner.(interface{ SetLinger(int) error }); ok {
		lc.SetLinger(0)
	}
	c.wmu.Lock()
	if c.werr == nil {
		c.werr = fmt.Errorf("faultinject: connection reset: %w", net.ErrClosed)
	}
	c.wmu.Unlock()
	c.teardown()
}

// Write parses frames out of the byte stream and hands each complete frame
// to the egress direction. Partial frames wait in the parse buffer for the
// next Write; the transport always completes them.
func (c *faultConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return 0, err
	}
	var frames [][]byte
	if c.wraw {
		frames = [][]byte{append([]byte(nil), p...)}
	} else {
		c.wparse = append(c.wparse, p...)
		for {
			fr, rest, ok, corrupt := nextFrame(c.wparse)
			if corrupt {
				// Framing lost (length prefix over MaxFrameSize): forward
				// everything raw from here on; faults still apply per chunk.
				c.wraw = true
				frames = append(frames, append([]byte(nil), c.wparse...))
				c.wparse = nil
				break
			}
			if !ok {
				break
			}
			frames = append(frames, fr)
			c.wparse = rest
		}
		if len(c.wparse) == 0 {
			c.wparse = nil
		}
	}
	c.wmu.Unlock()
	for _, fr := range frames {
		if err := c.eg.enqueue(fr); err != nil {
			c.wmu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.wmu.Unlock()
			return 0, err
		}
	}
	return len(p), nil
}

// nextFrame extracts one complete length-prefixed frame (header included,
// copied) from buf. ok reports a complete frame; corrupt reports a length
// prefix the transport itself would reject.
func nextFrame(buf []byte) (frame, rest []byte, ok, corrupt bool) {
	if len(buf) < 4 {
		return nil, buf, false, false
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n > transport.MaxFrameSize {
		return nil, buf, false, true
	}
	if len(buf) < 4+n {
		return nil, buf, false, false
	}
	frame = append([]byte(nil), buf[:4+n]...)
	rest = append(buf[:0], buf[4+n:]...) // compact in place
	return frame, rest, true, false
}

// readLoop lifts arriving frames off the inner connection into the ingress
// direction, preserving frame boundaries so ingress faults are exact too.
func (c *faultConn) readLoop() {
	var hdr [4]byte
	raw := false
	rawBuf := make([]byte, 32<<10)
	for {
		if raw {
			n, err := c.inner.Read(rawBuf)
			if n > 0 {
				if qe := c.in.enqueue(append([]byte(nil), rawBuf[:n]...)); qe != nil {
					return
				}
			}
			if err != nil {
				c.in.finishSrc(err)
				return
			}
			continue
		}
		if _, err := io.ReadFull(c.inner, hdr[:]); err != nil {
			c.in.finishSrc(err)
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n > transport.MaxFrameSize {
			// Corrupt stream: stop parsing, forward raw chunks from here on.
			raw = true
			if qe := c.in.enqueue(append([]byte(nil), hdr[:]...)); qe != nil {
				return
			}
			continue
		}
		frame := make([]byte, 4+n)
		copy(frame, hdr[:])
		if _, err := io.ReadFull(c.inner, frame[4:]); err != nil {
			c.in.finishSrc(err)
			return
		}
		if err := c.in.enqueue(frame); err != nil {
			return
		}
	}
}

// deliverRead appends a delivered frame to the read buffer, blocking (with
// teardown awareness) while the application is too far behind.
func (c *faultConn) deliverRead(data []byte) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) > maxReadBuffer {
		if c.down() {
			return net.ErrClosed
		}
		t := time.AfterFunc(holdPollInterval, c.rcond.Broadcast)
		c.rcond.Wait()
		t.Stop()
	}
	c.rbuf = append(c.rbuf, data...)
	c.rcond.Broadcast()
	return nil
}

// failRead surfaces the ingress error once every already-delivered byte has
// been read.
func (c *faultConn) failRead(err error) {
	if err == nil {
		err = io.EOF
	}
	c.rmu.Lock()
	if c.rerr == nil {
		c.rerr = err
	}
	c.rcond.Broadcast()
	c.rmu.Unlock()
}

// Read serves delivered bytes, honoring the read deadline — the failure
// detectors' probe timeouts depend on it.
func (c *faultConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		if len(c.rbuf) > 0 {
			n := copy(p, c.rbuf)
			c.rbuf = c.rbuf[n:]
			if len(c.rbuf) == 0 {
				c.rbuf = nil
			}
			c.rcond.Broadcast()
			return n, nil
		}
		if c.rerr != nil {
			return 0, c.rerr
		}
		if ddl := c.rdeadline; !ddl.IsZero() {
			d := time.Until(ddl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			t := time.AfterFunc(d, c.rcond.Broadcast)
			c.rcond.Wait()
			t.Stop()
		} else {
			c.rcond.Wait()
		}
	}
}

func (c *faultConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *faultConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *faultConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.rmu.Lock()
	c.rdeadline = t
	c.rcond.Broadcast()
	c.rmu.Unlock()
	return nil
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.wdmu.Lock()
	c.wdeadline = t
	c.wdmu.Unlock()
	return nil
}

func (c *faultConn) writeDeadline() time.Time {
	c.wdmu.Lock()
	defer c.wdmu.Unlock()
	return c.wdeadline
}

// enqueue admits one frame into the direction, sampling its latency, jitter
// and drop lottery deterministically. Blocks (bounded by the queue cap)
// when the direction is backed up, modelling a full socket buffer.
func (d *direction) enqueue(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.queued >= d.capBytes() {
		if d.c.down() || d.srcDone {
			return net.ErrClosed
		}
		if ddl := d.c.writeDeadline(); !ddl.IsZero() && !time.Now().Before(ddl) {
			return os.ErrDeadlineExceeded
		}
		t := time.AfterFunc(5*time.Millisecond, d.cond.Broadcast)
		d.cond.Wait()
		t.Stop()
	}
	if d.c.down() || d.srcDone {
		return net.ErrClosed
	}
	// Always draw both samples so the n-th frame's fate depends only on the
	// seed and the rules in force, never on which rules earlier frames saw.
	uJitter := d.rng.Float64()
	uDrop := d.rng.Float64()
	f := d.c.n.faultsFor(d.from, d.to)
	at := time.Now().Add(f.Latency + time.Duration(uJitter*float64(f.Jitter)))
	if at.Before(d.lastAt) {
		at = d.lastAt // one connection never reorders
	}
	d.lastAt = at
	d.queue = append(d.queue, qframe{data: data, at: at, drop: uDrop})
	d.queued += len(data)
	d.cond.Broadcast()
	return nil
}

// capBytes resolves the direction's current queued-byte bound, re-read every
// wait iteration so SetLink can shrink (or restore) a live link's buffer.
func (d *direction) capBytes() int {
	if wb := d.c.n.faultsFor(d.from, d.to).WriteBufferBytes; wb > 0 && wb < maxQueuedBytes {
		return wb
	}
	return maxQueuedBytes
}

// finishSrc marks the producer done; the pump drains what is queued, then
// reports err through onDrain.
func (d *direction) finishSrc(err error) {
	d.mu.Lock()
	if !d.srcDone {
		d.srcDone = true
		d.srcErr = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

func (d *direction) wake() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// drained reports an empty queue with no frame mid-delivery.
func (d *direction) drained() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue) == 0 && !d.inflight
}

// pump delivers queued frames in order, applying the direction's current
// fault program to each: wait out the sampled latency, hold while a
// partition or stall covers the link, run the drop lottery, pace to the
// bandwidth cap, deliver.
func (d *direction) pump() {
	n := d.c.n
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.srcDone && !d.c.down() {
			d.cond.Wait()
		}
		if d.c.down() || len(d.queue) == 0 {
			err := d.srcErr
			d.mu.Unlock()
			if !d.c.down() {
				d.onDrain(err)
			}
			return
		}
		qf := d.queue[0]
		d.queue = d.queue[1:]
		if len(d.queue) == 0 {
			d.queue = nil
		}
		d.queued -= len(qf.data)
		d.inflight = true
		d.cond.Broadcast()
		d.mu.Unlock()

		delivered := d.deliverOne(n, qf)
		d.mu.Lock()
		d.inflight = false
		d.mu.Unlock()
		if !delivered && d.c.down() {
			return
		}
	}
}

// deliverOne runs one frame through the fault program. Returns false when
// the connection tore down mid-delivery.
func (d *direction) deliverOne(n *Network, qf qframe) bool {
	if !d.sleepUntil(qf.at) {
		return false
	}
	held := false
	for {
		if d.c.down() {
			return false
		}
		f := n.faultsFor(d.from, d.to)
		if n.Partitioned(d.from, d.to) || f.Stall {
			if !held {
				held = true
				n.stats.FramesHeld.Add(1)
			}
			if !d.sleepFor(holdPollInterval) {
				return false
			}
			continue
		}
		if f.Drop > 0 && qf.drop < f.Drop {
			n.stats.FramesDropped.Add(1)
			return true
		}
		if f.BandwidthBps > 0 && !d.pace(len(qf.data), f.BandwidthBps) {
			return false
		}
		break
	}
	if err := d.deliver(qf.data); err != nil {
		if !d.c.down() {
			d.finishSrc(err)
			d.onDrain(err)
			d.c.teardown()
		}
		return false
	}
	n.stats.FramesForwarded.Add(1)
	n.stats.BytesForwarded.Add(uint64(len(qf.data)))
	return true
}

// pace enforces the bandwidth cap: frame k may not leave before the
// cumulative byte count so far divided by the cap.
func (d *direction) pace(size int, bps int64) bool {
	d.mu.Lock()
	now := time.Now()
	start := d.nextSend
	if start.Before(now) {
		start = now
	}
	d.nextSend = start.Add(time.Duration(int64(size) * int64(time.Second) / bps))
	d.mu.Unlock()
	return d.sleepUntil(start)
}

func (d *direction) sleepUntil(t time.Time) bool {
	w := time.Until(t)
	if w <= 0 {
		return !d.c.down()
	}
	return d.sleepFor(w)
}

func (d *direction) sleepFor(w time.Duration) bool {
	timer := time.NewTimer(w)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-d.c.done:
		return false
	}
}
