package spec

import (
	"strings"
	"testing"
	"time"
)

func TestParseTopicsValid(t *testing.T) {
	input := `
# comment
0, 50, 50, 0, 2, edge
1, 50, 50, 3, 0, edge

5, 500, 500.5, inf, 1, cloud
`
	topics, err := ParseTopics(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 3 {
		t.Fatalf("parsed %d topics, want 3", len(topics))
	}
	if topics[0].ID != 0 || topics[0].Period != 50*time.Millisecond || topics[0].Retention != 2 {
		t.Errorf("topic 0 = %+v", topics[0])
	}
	if topics[2].LossTolerance != LossUnbounded {
		t.Errorf("inf loss tolerance = %d", topics[2].LossTolerance)
	}
	if topics[2].Destination != DestCloud {
		t.Errorf("destination = %v", topics[2].Destination)
	}
	if topics[2].Deadline != 500*time.Millisecond+500*time.Microsecond {
		t.Errorf("fractional deadline = %v", topics[2].Deadline)
	}
}

func TestParseTopicsErrors(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"empty", ""},
		{"wrong fields", "1, 2, 3\n"},
		{"bad id", "x, 50, 50, 0, 2, edge\n"},
		{"bad period", "1, zz, 50, 0, 2, edge\n"},
		{"bad deadline", "1, 50, zz, 0, 2, edge\n"},
		{"bad loss", "1, 50, 50, maybe, 2, edge\n"},
		{"bad retention", "1, 50, 50, 0, x, edge\n"},
		{"bad destination", "1, 50, 50, 0, 2, mars\n"},
		{"negative loss", "1, 50, 50, -1, 2, edge\n"},
		{"zero period", "1, 0, 50, 0, 2, edge\n"},
		{"duplicate id", "1, 50, 50, 0, 2, edge\n1, 50, 50, 0, 2, edge\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTopics(strings.NewReader(tc.input)); err == nil {
				t.Error("accepted invalid input")
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	var topics []Topic
	for i, c := range Table2() {
		topics = append(topics, c.Stamp(TopicID(i), PayloadSize))
	}
	text := FormatTopics(topics)
	parsed, err := ParseTopics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("%v\ninput:\n%s", err, text)
	}
	if len(parsed) != len(topics) {
		t.Fatalf("round trip lost topics: %d vs %d", len(parsed), len(topics))
	}
	for i := range topics {
		want := topics[i]
		want.Category = -1 // category is not part of the file format
		if parsed[i] != want {
			t.Errorf("topic %d: %+v != %+v", i, parsed[i], want)
		}
	}
}
