// Package spec defines topic specifications and the evaluation workloads of
// the FRAME paper (§III, Table 2, §VI).
//
// A topic couples a sporadic traffic description (minimum inter-creation
// time Ti) with a quality-of-service contract: an end-to-end soft deadline
// Di, a loss-tolerance level Li (the subscriber tolerates at most Li
// consecutive message losses), and a publisher retention depth Ni (the
// publisher retains the Ni latest messages for re-send on fail-over).
package spec

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Destination says where a topic's subscribers live relative to the broker.
// Edge subscribers sit in close proximity (sub-millisecond latency); cloud
// subscribers sit across a WAN link (tens of milliseconds).
type Destination int

// Destinations, in paper order (Table 2, last column).
const (
	DestEdge Destination = iota + 1
	DestCloud
)

// String returns the Table 2 label for the destination.
func (d Destination) String() string {
	switch d {
	case DestEdge:
		return "Edge"
	case DestCloud:
		return "Cloud"
	default:
		return fmt.Sprintf("Destination(%d)", int(d))
	}
}

// LossUnbounded is the Li value meaning best-effort delivery: subscribers
// tolerate any number of consecutive losses (Table 2's "∞").
const LossUnbounded = math.MaxInt32

// TopicID identifies a topic within a deployment.
type TopicID uint32

// Topic is the per-topic specification.
type Topic struct {
	ID TopicID
	// Category is the Table 2 category index (0–5) this topic belongs to,
	// or -1 for topics outside the paper's evaluation set.
	Category int
	// Period is Ti, the minimum inter-creation time of messages.
	Period time.Duration
	// Deadline is Di, the end-to-end soft latency bound publisher→subscriber.
	Deadline time.Duration
	// LossTolerance is Li: the max acceptable number of consecutive losses.
	// Use LossUnbounded for best-effort topics.
	LossTolerance int
	// Retention is Ni: how many of its latest messages the publisher retains.
	Retention int
	// Destination locates the subscriber(s).
	Destination Destination
	// PayloadSize is the message payload size in bytes (16 in the paper).
	PayloadSize int
}

// Validate checks the specification for internal consistency.
func (t Topic) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("topic %d: period %v must be positive", t.ID, t.Period)
	case t.Deadline <= 0:
		return fmt.Errorf("topic %d: deadline %v must be positive", t.ID, t.Deadline)
	case t.LossTolerance < 0:
		return fmt.Errorf("topic %d: loss tolerance %d must be non-negative", t.ID, t.LossTolerance)
	case t.Retention < 0:
		return fmt.Errorf("topic %d: retention %d must be non-negative", t.ID, t.Retention)
	case t.Destination != DestEdge && t.Destination != DestCloud:
		return fmt.Errorf("topic %d: unknown destination %d", t.ID, int(t.Destination))
	case t.PayloadSize < 0:
		return fmt.Errorf("topic %d: payload size %d must be non-negative", t.ID, t.PayloadSize)
	}
	return nil
}

// BestEffort reports whether the topic only asks for best-effort delivery
// (Li = ∞), in which case it never needs replication or retention.
func (t Topic) BestEffort() bool { return t.LossTolerance >= LossUnbounded }

// Category is one row of Table 2: a template from which topics are stamped.
type Category struct {
	Index         int
	Period        time.Duration
	Deadline      time.Duration
	LossTolerance int
	Retention     int
	Destination   Destination
}

// Table2 returns the paper's six example topic categories. Timing values are
// in milliseconds in the paper; Retention is the minimum Ni that keeps the
// replication deadline non-negative (Table 2, fifth column).
func Table2() []Category {
	return []Category{
		{Index: 0, Period: 50 * time.Millisecond, Deadline: 50 * time.Millisecond, LossTolerance: 0, Retention: 2, Destination: DestEdge},
		{Index: 1, Period: 50 * time.Millisecond, Deadline: 50 * time.Millisecond, LossTolerance: 3, Retention: 0, Destination: DestEdge},
		{Index: 2, Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond, LossTolerance: 0, Retention: 1, Destination: DestEdge},
		{Index: 3, Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond, LossTolerance: 3, Retention: 0, Destination: DestEdge},
		{Index: 4, Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond, LossTolerance: LossUnbounded, Retention: 0, Destination: DestEdge},
		{Index: 5, Period: 500 * time.Millisecond, Deadline: 500 * time.Millisecond, LossTolerance: 0, Retention: 1, Destination: DestCloud},
	}
}

// Stamp instantiates a topic from the category template.
func (c Category) Stamp(id TopicID, payload int) Topic {
	return Topic{
		ID:            id,
		Category:      c.Index,
		Period:        c.Period,
		Deadline:      c.Deadline,
		LossTolerance: c.LossTolerance,
		Retention:     c.Retention,
		Destination:   c.Destination,
		PayloadSize:   payload,
	}
}

// PayloadSize is the paper's per-message payload (16 bytes, §VI).
const PayloadSize = 16

// Publisher grouping in the evaluation (§VI): publishers are proxies that
// batch one message per topic they own.
const (
	// TopicsPerFastProxy is the proxy fan-in for categories 0 and 1.
	TopicsPerFastProxy = 10
	// TopicsPerSensorProxy is the proxy fan-in for categories 2–4.
	TopicsPerSensorProxy = 50
)

// Workload is an instantiated evaluation topic set.
type Workload struct {
	// TotalTopics is the headline size (1525, 4525, ... in the paper).
	TotalTopics int
	// Topics holds one entry per topic, categories in ascending order.
	Topics []Topic
	// CategoryCount[c] is the number of topics in category c.
	CategoryCount [6]int
}

// Paper workload sizes (§VI): "a total of 1525, 4525, 7525, 10525, and
// 13525 topics".
var WorkloadSizes = []int{1525, 4525, 7525, 10525, 13525}

// ErrWorkloadShape reports an unconstructible workload.
var ErrWorkloadShape = errors.New("spec: workload shape")

// NewWorkload builds the paper's topic set for the given total:
// ten topics each in categories 0 and 1, five topics in category 5, and the
// remainder split evenly across categories 2–4 (§VI: workload is scaled by
// increasing the number of topics in categories 2–4).
func NewWorkload(totalTopics int) (*Workload, error) {
	const fixed = 10 + 10 + 5
	if totalTopics < fixed {
		return nil, fmt.Errorf("%w: total %d below fixed minimum %d", ErrWorkloadShape, totalTopics, fixed)
	}
	variable := totalTopics - fixed
	if variable%3 != 0 {
		return nil, fmt.Errorf("%w: %d variable topics not divisible across categories 2-4", ErrWorkloadShape, variable)
	}
	perMid := variable / 3
	counts := [6]int{10, 10, perMid, perMid, perMid, 5}
	cats := Table2()
	w := &Workload{TotalTopics: totalTopics, CategoryCount: counts}
	w.Topics = make([]Topic, 0, totalTopics)
	var id TopicID
	for c, n := range counts {
		for i := 0; i < n; i++ {
			w.Topics = append(w.Topics, cats[c].Stamp(id, PayloadSize))
			id++
		}
	}
	return w, nil
}

// BoostRetention returns a copy of the workload with Ni increased by delta
// for the given categories. This models the paper's FRAME+ configuration
// (§VI: "we set Ni = 2 for categories 2 and 5").
func (w *Workload) BoostRetention(delta int, categories ...int) *Workload {
	boost := make(map[int]bool, len(categories))
	for _, c := range categories {
		boost[c] = true
	}
	out := &Workload{TotalTopics: w.TotalTopics, CategoryCount: w.CategoryCount}
	out.Topics = make([]Topic, len(w.Topics))
	copy(out.Topics, w.Topics)
	for i := range out.Topics {
		if boost[out.Topics[i].Category] {
			out.Topics[i].Retention += delta
		}
	}
	return out
}

// MessageRate returns the aggregate steady-state message arrival rate of the
// workload in messages per second.
func (w *Workload) MessageRate() float64 {
	var rate float64
	for _, t := range w.Topics {
		rate += float64(time.Second) / float64(t.Period)
	}
	return rate
}
