package spec

import (
	"strings"
	"testing"
)

// FuzzParseTopics checks that the topic-file parser never panics and that
// everything it accepts survives a format→parse round trip.
func FuzzParseTopics(f *testing.F) {
	f.Add("0, 50, 50, 0, 2, edge\n")
	f.Add("1, 50, 50, 3, 0, edge\n5, 500, 500.5, inf, 1, cloud\n")
	f.Add("# comment only\n")
	f.Add("1, 50\n")
	f.Add("1, -50, 50, 0, 2, edge\n")

	f.Fuzz(func(t *testing.T, input string) {
		topics, err := ParseTopics(strings.NewReader(input))
		if err != nil {
			return
		}
		text := FormatTopics(topics)
		again, err := ParseTopics(strings.NewReader(text))
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
		}
		if len(again) != len(topics) {
			t.Fatalf("round trip changed topic count: %d vs %d", len(again), len(topics))
		}
		for i := range topics {
			a, b := topics[i], again[i]
			if a.ID != b.ID || a.LossTolerance != b.LossTolerance ||
				a.Retention != b.Retention || a.Destination != b.Destination {
				t.Fatalf("round trip changed topic %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
