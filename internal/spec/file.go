package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseTopics reads a topic specification file: one topic per line,
// comma-separated fields
//
//	id, period_ms, deadline_ms, loss_tolerance, retention, destination
//
// where loss_tolerance is a non-negative integer or "inf" (best effort)
// and destination is "edge" or "cloud". Blank lines and lines starting
// with '#' are ignored. This is the on-disk format used by the cmd/ tools.
func ParseTopics(r io.Reader) ([]Topic, error) {
	var out []Topic
	seen := make(map[TopicID]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTopicLine(line)
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("spec: line %d: duplicate topic id %d", lineNo, t.ID)
		}
		seen[t.ID] = true
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spec: read: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("spec: no topics in input")
	}
	return out, nil
}

func parseTopicLine(line string) (Topic, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 6 {
		return Topic{}, fmt.Errorf("want 6 fields (id,period_ms,deadline_ms,loss,retention,dest), got %d", len(fields))
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	id, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return Topic{}, fmt.Errorf("id %q: %w", fields[0], err)
	}
	period, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Topic{}, fmt.Errorf("period %q: %w", fields[1], err)
	}
	deadline, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Topic{}, fmt.Errorf("deadline %q: %w", fields[2], err)
	}
	loss := 0
	if strings.EqualFold(fields[3], "inf") {
		loss = LossUnbounded
	} else if loss, err = strconv.Atoi(fields[3]); err != nil {
		return Topic{}, fmt.Errorf("loss tolerance %q: %w", fields[3], err)
	}
	retention, err := strconv.Atoi(fields[4])
	if err != nil {
		return Topic{}, fmt.Errorf("retention %q: %w", fields[4], err)
	}
	var dest Destination
	switch strings.ToLower(fields[5]) {
	case "edge":
		dest = DestEdge
	case "cloud":
		dest = DestCloud
	default:
		return Topic{}, fmt.Errorf("destination %q: want edge or cloud", fields[5])
	}
	t := Topic{
		ID:            TopicID(id),
		Category:      -1,
		Period:        time.Duration(period * float64(time.Millisecond)),
		Deadline:      time.Duration(deadline * float64(time.Millisecond)),
		LossTolerance: loss,
		Retention:     retention,
		Destination:   dest,
		PayloadSize:   PayloadSize,
	}
	if err := t.Validate(); err != nil {
		return Topic{}, err
	}
	return t, nil
}

// FormatTopics renders topics in the ParseTopics format, with a header.
func FormatTopics(topics []Topic) string {
	var b strings.Builder
	b.WriteString("# id, period_ms, deadline_ms, loss_tolerance, retention, destination\n")
	for _, t := range topics {
		loss := strconv.Itoa(t.LossTolerance)
		if t.BestEffort() {
			loss = "inf"
		}
		dest := "edge"
		if t.Destination == DestCloud {
			dest = "cloud"
		}
		fmt.Fprintf(&b, "%d, %g, %g, %s, %d, %s\n",
			t.ID,
			float64(t.Period)/float64(time.Millisecond),
			float64(t.Deadline)/float64(time.Millisecond),
			loss, t.Retention, dest)
	}
	return b.String()
}
