package spec

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestTable2MatchesPaper(t *testing.T) {
	cats := Table2()
	if len(cats) != 6 {
		t.Fatalf("Table2 has %d categories, want 6", len(cats))
	}
	tests := []struct {
		idx  int
		ti   time.Duration
		di   time.Duration
		li   int
		ni   int
		dest Destination
	}{
		{0, 50 * time.Millisecond, 50 * time.Millisecond, 0, 2, DestEdge},
		{1, 50 * time.Millisecond, 50 * time.Millisecond, 3, 0, DestEdge},
		{2, 100 * time.Millisecond, 100 * time.Millisecond, 0, 1, DestEdge},
		{3, 100 * time.Millisecond, 100 * time.Millisecond, 3, 0, DestEdge},
		{4, 100 * time.Millisecond, 100 * time.Millisecond, LossUnbounded, 0, DestEdge},
		{5, 500 * time.Millisecond, 500 * time.Millisecond, 0, 1, DestCloud},
	}
	for _, tc := range tests {
		c := cats[tc.idx]
		if c.Index != tc.idx || c.Period != tc.ti || c.Deadline != tc.di ||
			c.LossTolerance != tc.li || c.Retention != tc.ni || c.Destination != tc.dest {
			t.Errorf("category %d = %+v, want {Ti:%v Di:%v Li:%d Ni:%d %v}",
				tc.idx, c, tc.ti, tc.di, tc.li, tc.ni, tc.dest)
		}
	}
}

func TestStampAndValidate(t *testing.T) {
	top := Table2()[0].Stamp(7, PayloadSize)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if top.ID != 7 || top.Category != 0 || top.PayloadSize != 16 {
		t.Errorf("stamped topic = %+v", top)
	}
}

func TestValidateRejections(t *testing.T) {
	base := Table2()[0].Stamp(1, 16)
	tests := []struct {
		name   string
		mutate func(*Topic)
	}{
		{"zero period", func(x *Topic) { x.Period = 0 }},
		{"negative deadline", func(x *Topic) { x.Deadline = -time.Second }},
		{"negative loss tolerance", func(x *Topic) { x.LossTolerance = -1 }},
		{"negative retention", func(x *Topic) { x.Retention = -2 }},
		{"bad destination", func(x *Topic) { x.Destination = 0 }},
		{"negative payload", func(x *Topic) { x.PayloadSize = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			top := base
			tc.mutate(&top)
			if err := top.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", top)
			}
		})
	}
}

func TestBestEffort(t *testing.T) {
	if !Table2()[4].Stamp(0, 16).BestEffort() {
		t.Error("category 4 should be best-effort")
	}
	if Table2()[0].Stamp(0, 16).BestEffort() {
		t.Error("category 0 should not be best-effort")
	}
}

func TestNewWorkloadPaperSizes(t *testing.T) {
	for _, total := range WorkloadSizes {
		w, err := NewWorkload(total)
		if err != nil {
			t.Fatalf("NewWorkload(%d): %v", total, err)
		}
		if len(w.Topics) != total {
			t.Errorf("NewWorkload(%d) produced %d topics", total, len(w.Topics))
		}
		if w.CategoryCount[0] != 10 || w.CategoryCount[1] != 10 || w.CategoryCount[5] != 5 {
			t.Errorf("fixed category counts = %v", w.CategoryCount)
		}
		perMid := (total - 25) / 3
		for c := 2; c <= 4; c++ {
			if w.CategoryCount[c] != perMid {
				t.Errorf("category %d count = %d, want %d", c, w.CategoryCount[c], perMid)
			}
		}
		// Topic IDs are dense and categories ascend.
		for i, top := range w.Topics {
			if top.ID != TopicID(i) {
				t.Fatalf("topic %d has ID %d", i, top.ID)
			}
			if i > 0 && top.Category < w.Topics[i-1].Category {
				t.Fatalf("categories not ascending at %d", i)
			}
			if err := top.Validate(); err != nil {
				t.Fatalf("topic %d invalid: %v", i, err)
			}
		}
	}
}

func TestNewWorkloadRejectsBadShapes(t *testing.T) {
	if _, err := NewWorkload(10); !errors.Is(err, ErrWorkloadShape) {
		t.Errorf("NewWorkload(10) err = %v, want ErrWorkloadShape", err)
	}
	if _, err := NewWorkload(27); !errors.Is(err, ErrWorkloadShape) {
		t.Errorf("NewWorkload(27) err = %v, want ErrWorkloadShape", err)
	}
}

func TestBoostRetention(t *testing.T) {
	w, err := NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	plus := w.BoostRetention(1, 2, 5)
	var checked int
	for i, top := range plus.Topics {
		orig := w.Topics[i]
		wantBoost := top.Category == 2 || top.Category == 5
		delta := top.Retention - orig.Retention
		if wantBoost && delta != 1 {
			t.Fatalf("topic %d cat %d: retention delta %d, want 1", i, top.Category, delta)
		}
		if !wantBoost && delta != 0 {
			t.Fatalf("topic %d cat %d: retention delta %d, want 0", i, top.Category, delta)
		}
		checked++
	}
	if checked != 1525 {
		t.Errorf("checked %d topics", checked)
	}
	// Original untouched.
	if w.Topics[20].Category != 2 || w.Topics[20].Retention != 1 {
		t.Errorf("original workload mutated: %+v", w.Topics[20])
	}
}

func TestMessageRate(t *testing.T) {
	w, err := NewWorkload(7525)
	if err != nil {
		t.Fatal(err)
	}
	// 20 topics @20/s + 7500 @10/s + 5 @2/s = 400 + 75000 + 10.
	want := 75410.0
	if got := w.MessageRate(); math.Abs(got-want) > 1e-6 {
		t.Errorf("MessageRate = %v, want %v", got, want)
	}
}

func TestDestinationString(t *testing.T) {
	if DestEdge.String() != "Edge" || DestCloud.String() != "Cloud" {
		t.Error("destination labels wrong")
	}
	if Destination(9).String() != "Destination(9)" {
		t.Errorf("unknown destination label = %q", Destination(9).String())
	}
}
