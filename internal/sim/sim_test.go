package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d * time.Millisecond
		e.At(d, func() { got = append(got, d) })
	}
	e.RunUntilIdle()
	want := []time.Duration{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w*time.Millisecond {
			t.Errorf("event %d at %v, want %v", i, got[i], w*time.Millisecond)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order broken: got %v", got)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := New()
	e.At(5*time.Millisecond, func() {
		if e.Now() != 5*time.Millisecond {
			t.Errorf("Now = %v inside event, want 5ms", e.Now())
		}
		e.After(10*time.Millisecond, func() {
			if e.Now() != 15*time.Millisecond {
				t.Errorf("Now = %v, want 15ms", e.Now())
			}
		})
	})
	e.RunUntilIdle()
	if e.Now() != 15*time.Millisecond {
		t.Errorf("final Now = %v, want 15ms", e.Now())
	}
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
}

func TestEngineHorizonStopsBeforeLaterEvents(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		e.At(d, func() { fired = append(fired, d) })
	}
	e.Run(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 25*time.Millisecond {
		t.Errorf("Now = %v, want clamped to horizon 25ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Resuming picks up the remainder.
	e.Run(0)
	if len(fired) != 4 {
		t.Errorf("after resume fired = %d, want 4", len(fired))
	}
}

func TestEngineEventAtHorizonFires(t *testing.T) {
	e := New()
	fired := false
	e.At(25*time.Millisecond, func() { fired = true })
	e.Run(25 * time.Millisecond)
	if !fired {
		t.Error("event exactly at horizon did not fire")
	}
}

func TestEngineHorizonAdvancesClockWhenIdle(t *testing.T) {
	e := New()
	e.Run(time.Second)
	if e.Now() != time.Second {
		t.Errorf("Now = %v, want 1s after idle run to horizon", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 2 {
		t.Fatalf("ran %d events after Stop, want 2", count)
	}
	e.Run(0)
	if count != 5 {
		t.Fatalf("resume ran %d total, want 5", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Millisecond, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	New().At(0, nil)
}

func TestEngineAfterClampsNegative(t *testing.T) {
	e := New()
	ran := false
	e.After(-time.Second, func() { ran = true })
	e.RunUntilIdle()
	if !ran {
		t.Error("negative After delay did not run")
	}
}

// TestEngineOrderProperty checks, over random schedules, that events always
// fire in nondecreasing time order and that equal-time events preserve
// scheduling order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		type rec struct {
			at  time.Duration
			idx int
		}
		var fired []rec
		count := int(n%64) + 1
		times := make([]time.Duration, count)
		for i := 0; i < count; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			times[i] = at
			i := i
			e.At(at, func() { fired = append(fired, rec{at: e.Now(), idx: i}) })
		}
		e.RunUntilIdle()
		if len(fired) != count {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].idx < fired[b].idx
		}) {
			return false
		}
		// Stability: among equal times, idx increases.
		for i := 1; i < len(fired); i++ {
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New()
		rng := rand.New(rand.NewSource(42))
		var fired []time.Duration
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(time.Duration(rng.Intn(10))*time.Millisecond, func() {
				fired = append(fired, e.Now())
				schedule(depth + 1)
				schedule(depth + 1)
			})
		}
		schedule(0)
		e.RunUntilIdle()
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 10000 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}
