// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock. It is the substrate on which the FRAME evaluation
// experiments run: brokers, publishers, subscribers, and network links are
// modeled as event handlers scheduled on a single virtual timeline, so a
// "60 second" run with tens of thousands of topics executes in well under a
// second of wall time and produces bit-identical results across runs.
//
// The engine is intentionally small: an event heap keyed by (time, sequence)
// and a loop. Determinism comes from the total order on events; two events
// scheduled for the same instant fire in scheduling order.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a closure scheduled to run at a virtual instant.
type Event func()

// item is a scheduled event in the heap.
type item struct {
	at  time.Duration // virtual time since simulation start
	seq uint64        // tie-breaker preserving scheduling order
	fn  Event
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	it, ok := x.(item)
	if !ok {
		panic(fmt.Sprintf("sim: pushed non-item %T", x))
	}
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item{}
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use: all scheduling must
// happen from event handlers or before Run.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	stopped bool
	ran     uint64
}

// New returns an empty engine at virtual time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) is a programming error and panics: silently reordering time
// would corrupt causality in every model built on the engine.
func (e *Engine) At(at time.Duration, fn Event) {
	if fn == nil {
		panic("sim: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero so callers may pass small computed deltas without worrying
// about rounding below zero.
func (e *Engine) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop makes the currently executing Run return after the in-flight event
// completes. Further events remain queued and a subsequent Run call resumes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, the horizon
// is exceeded, or Stop is called. A zero horizon means no time limit.
// Events scheduled exactly at the horizon still fire; the first event
// strictly beyond it is left queued and the clock is advanced to the horizon.
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if horizon > 0 && next.at > horizon {
			e.now = horizon
			return
		}
		popped, ok := heap.Pop(&e.events).(item)
		if !ok {
			panic("sim: heap returned non-item")
		}
		e.now = popped.at
		e.ran++
		popped.fn()
	}
	if horizon > 0 && e.now < horizon && len(e.events) == 0 {
		e.now = horizon
	}
}

// RunUntilIdle executes all queued events with no horizon.
func (e *Engine) RunUntilIdle() { e.Run(0) }
