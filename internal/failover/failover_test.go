package failover

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func testConfig() Config {
	return Config{Period: 2 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 3}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, bad := range []Config{
		{Period: 0, Timeout: time.Millisecond, Misses: 1},
		{Period: time.Millisecond, Timeout: 0, Misses: 1},
		{Period: time.Millisecond, Timeout: time.Millisecond, Misses: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestWorstCaseDetectionWithinPaperFailoverBudget(t *testing.T) {
	// The paper's worked example uses x = 50 ms; the default detector must
	// detect well inside that so redirect+resend fits too.
	if got := DefaultConfig().WorstCaseDetection(); got > 35*time.Millisecond {
		t.Errorf("WorstCaseDetection = %v, want ≤ 35ms", got)
	}
}

func TestNewValidation(t *testing.T) {
	probe := func(context.Context) error { return nil }
	if _, err := New(testConfig(), nil, func() {}); err == nil {
		t.Error("nil probe accepted")
	}
	if _, err := New(testConfig(), probe, nil); err == nil {
		t.Error("nil onCrash accepted")
	}
	if _, err := New(Config{}, probe, func() {}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestDetectorFiresAfterConsecutiveMisses(t *testing.T) {
	var alive atomic.Bool
	alive.Store(true)
	var fired atomic.Bool
	probe := func(context.Context) error {
		if alive.Load() {
			return nil
		}
		return errors.New("down")
	}
	d, err := New(testConfig(), probe, func() { fired.Store(true) })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run(context.Background()) }()

	time.Sleep(10 * time.Millisecond) // several healthy probes
	if fired.Load() {
		t.Fatal("fired while healthy")
	}
	alive.Store(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("detector did not fire")
	}
	if !fired.Load() || !d.Fired() {
		t.Error("onCrash not invoked")
	}
	if d.Probes() < 3 {
		t.Errorf("Probes = %d, want ≥ 3", d.Probes())
	}
}

func TestDetectorResetsMissCounterOnSuccess(t *testing.T) {
	// Pattern: fail, fail, ok, fail, fail, ok, ... never reaches 3 misses.
	var n atomic.Int64
	probe := func(context.Context) error {
		if n.Add(1)%3 == 0 {
			return nil
		}
		return errors.New("flaky")
	}
	d, err := New(testConfig(), probe, func() { t.Error("fired on flaky link") })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, want deadline exceeded", err)
	}
}

func TestDetectorCancel(t *testing.T) {
	probe := func(context.Context) error { return nil }
	d, err := New(testConfig(), probe, func() {})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return on cancel")
	}
}

func TestDetectorHonorsProbeTimeout(t *testing.T) {
	// A probe that hangs must be cut off by Timeout, not stall the loop.
	probe := func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}
	fired := make(chan struct{})
	d, err := New(testConfig(), probe, func() { close(fired) })
	if err != nil {
		t.Fatal(err)
	}
	go d.Run(context.Background()) //nolint:errcheck // detector exits after firing
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("hanging probes never declared crash")
	}
}

// TestConnProbeAgainstResponder runs the detector over a real pipe: a
// responder loop answers polls until "crashed", then the detector fires.
func TestConnProbeAgainstResponder(t *testing.T) {
	backupNC, primaryNC := net.Pipe()
	backup, primary := transport.NewConn(backupNC), transport.NewConn(primaryNC)
	defer backup.Close()

	// Primary responder until killed.
	primaryDone := make(chan struct{})
	go func() {
		defer close(primaryDone)
		for {
			f, err := primary.Recv()
			if err != nil {
				return
			}
			if f.Type == wire.TypePoll {
				if err := primary.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce}); err != nil {
					return
				}
			}
		}
	}()

	fired := make(chan struct{})
	d, err := New(testConfig(), ConnProbe(backup), func() { close(fired) })
	if err != nil {
		t.Fatal(err)
	}
	go d.Run(context.Background()) //nolint:errcheck // exits after firing

	time.Sleep(15 * time.Millisecond)
	select {
	case <-fired:
		t.Fatal("fired while primary alive")
	default:
	}
	primary.Close() // crash (fail-stop)
	<-primaryDone
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("crash not detected")
	}
}

// TestSetOnProbe checks the observability hook sees every probe result in
// order: successes while the peer answers, then the misses that declare the
// crash.
func TestSetOnProbe(t *testing.T) {
	alive := atomic.Bool{}
	alive.Store(true)
	probe := func(ctx context.Context) error {
		if alive.Load() {
			return nil
		}
		return errors.New("down")
	}
	var oks, misses atomic.Uint64
	fired := make(chan struct{})
	det, err := New(testConfig(), probe, func() { close(fired) })
	if err != nil {
		t.Fatal(err)
	}
	det.SetOnProbe(func(err error) {
		if err == nil {
			oks.Add(1)
		} else {
			misses.Add(1)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- det.Run(ctx) }()

	deadline := time.Now().Add(time.Second)
	for oks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if oks.Load() < 3 {
		t.Fatal("no successful probes observed")
	}
	alive.Store(false)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("crash not detected")
	}
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	if got := misses.Load(); got != uint64(testConfig().Misses) {
		t.Errorf("observed misses = %d, want %d", got, testConfig().Misses)
	}
}
