// Package failover implements FRAME's crash-failure detection and
// promotion triggering (§IV-A: "The Backup tracks the status of its Primary
// via periodic polling, and would become a new Primary once it detected
// that its Primary had crashed").
//
// The detector is deliberately simple — fail-stop crashes, bounded-latency
// interconnect between brokers (§III-B assumptions) — so a fixed polling
// period with a consecutive-miss threshold is sound. Publishers run the
// same detector against the Primary to decide when to redirect traffic and
// re-send their retained messages; the publisher fail-over time x is then
// bounded by Period·Misses + Timeout + redirect cost, which is how
// deployments derive the x they feed into Lemma 1.
package failover

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes the detector.
type Config struct {
	// Period is the polling interval.
	Period time.Duration
	// Timeout bounds one probe round trip.
	Timeout time.Duration
	// Misses is how many consecutive probe failures declare a crash.
	Misses int
}

// DefaultConfig returns a detector tuning whose worst-case detection time
// (Period·Misses + Timeout ≈ 25 ms) sits well inside the paper's 50 ms
// fail-over budget.
func DefaultConfig() Config {
	return Config{Period: 5 * time.Millisecond, Timeout: 10 * time.Millisecond, Misses: 3}
}

// Validate checks the tuning.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("failover: period %v must be positive", c.Period)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("failover: timeout %v must be positive", c.Timeout)
	}
	if c.Misses <= 0 {
		return fmt.Errorf("failover: misses %d must be positive", c.Misses)
	}
	return nil
}

// WorstCaseDetection returns the longest interval between a crash and the
// detector firing: the crash can land right after a successful probe, then
// Misses probes must each time out.
func (c Config) WorstCaseDetection() time.Duration {
	return time.Duration(c.Misses)*c.Period + c.Timeout
}

// Probe performs one liveness check, returning nil if the peer is alive.
// Implementations must respect the context deadline.
type Probe func(ctx context.Context) error

// Detector polls a peer and fires a callback on suspected crash. Create
// with New, start with Run; it stops after firing or when the context ends.
type Detector struct {
	cfg     Config
	probe   Probe
	onCrash func()
	onProbe func(err error)

	mu     sync.Mutex
	misses int
	probes uint64
	fired  bool
}

// New returns a detector. onCrash runs at most once, from Run's goroutine.
func New(cfg Config, probe Probe, onCrash func()) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if probe == nil {
		return nil, errors.New("failover: nil probe")
	}
	if onCrash == nil {
		return nil, errors.New("failover: nil onCrash")
	}
	return &Detector{cfg: cfg, probe: probe, onCrash: onCrash}, nil
}

// SetOnProbe registers an observability callback invoked with each probe
// result (nil on success) before it is folded into the miss counter. Must
// be called before Run; the callback runs on Run's goroutine.
func (d *Detector) SetOnProbe(f func(err error)) { d.onProbe = f }

// Run polls until the context is canceled or a crash is declared. It
// returns context.Canceled on cancellation and nil after firing onCrash.
func (d *Detector) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		probeCtx, cancel := context.WithTimeout(ctx, d.cfg.Timeout)
		err := d.probe(probeCtx)
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if d.onProbe != nil {
			d.onProbe(err)
		}
		if d.observe(err) {
			d.onCrash()
			return nil
		}
	}
}

// observe folds one probe result into the miss counter and reports whether
// the crash threshold was reached.
func (d *Detector) observe(err error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.probes++
	if d.fired {
		return false
	}
	if err == nil {
		d.misses = 0
		return false
	}
	d.misses++
	if d.misses >= d.cfg.Misses {
		d.fired = true
		return true
	}
	return false
}

// Probes returns how many probes have completed (for tests and metrics).
func (d *Detector) Probes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.probes
}

// Fired reports whether the detector has declared a crash.
func (d *Detector) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// ConnProbe returns a Probe that performs a Poll/PollReply round trip on a
// dedicated framed connection. The connection must not be shared with other
// readers. A nil error means the peer answered the matching nonce.
func ConnProbe(conn *transport.Conn) Probe {
	var nonce uint64
	return func(ctx context.Context) error {
		nonce++
		deadline, ok := ctx.Deadline()
		if !ok {
			deadline = time.Now().Add(time.Second)
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			return fmt.Errorf("failover: set deadline: %w", err)
		}
		if err := conn.Send(&wire.Frame{Type: wire.TypePoll, Nonce: nonce}); err != nil {
			return fmt.Errorf("failover: poll send: %w", err)
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				return fmt.Errorf("failover: poll recv: %w", err)
			}
			if f.Type == wire.TypePollReply && f.Nonce == nonce {
				return nil
			}
		}
	}
}
