package clocksync

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// RunnerOptions configures a background synchronization loop.
type RunnerOptions struct {
	// ServerAddr is the time server (normally the Primary broker, which
	// answers TimeReq frames on any session).
	ServerAddr string
	// Network supplies dialing.
	Network transport.Network
	// Local is the clock being disciplined.
	Local Clock
	// Interval between exchanges (default 1 s, PTPd's default sync rate).
	Interval time.Duration
	// Timeout bounds one exchange round trip (default 500 ms).
	Timeout time.Duration
	// Gain is the servo constant (0 = default).
	Gain float64
}

// Runner periodically exchanges timestamps with a server and maintains a
// Synchronizer. It is the reproduction's equivalent of running ptpd/chrony
// on every host of the paper's test-bed (§VI-A).
type Runner struct {
	opts RunnerOptions
	sync *Synchronizer
}

// NewRunner validates options and builds the disciplined clock.
func NewRunner(opts RunnerOptions) (*Runner, error) {
	if opts.Network == nil {
		return nil, errors.New("clocksync: nil network")
	}
	if opts.ServerAddr == "" {
		return nil, errors.New("clocksync: empty server address")
	}
	if opts.Interval == 0 {
		opts.Interval = time.Second
	}
	if opts.Interval < 0 || opts.Timeout < 0 {
		return nil, fmt.Errorf("clocksync: negative interval or timeout")
	}
	if opts.Timeout == 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	s, err := NewSynchronizer(opts.Local, opts.Gain)
	if err != nil {
		return nil, err
	}
	return &Runner{opts: opts, sync: s}, nil
}

// Clock returns the disciplined clock: local time corrected by the current
// offset estimate. Valid (but uncorrected) before the first exchange.
func (r *Runner) Clock() Clock { return r.sync.Now }

// Synchronizer exposes the underlying estimator (for status reporting).
func (r *Runner) Synchronizer() *Synchronizer { return r.sync }

// Run dials the server and keeps exchanging until the context ends. It
// redials on connection failure, returning only on context cancellation.
func (r *Runner) Run(ctx context.Context) error {
	ticker := time.NewTicker(r.opts.Interval)
	defer ticker.Stop()
	var conn *transport.Conn
	var nonce uint64
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		if conn == nil {
			nc, err := r.opts.Network.Dial(r.opts.ServerAddr)
			if err == nil {
				conn = transport.NewConn(nc)
				err = conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "clocksync"})
				if err != nil {
					conn.Close()
					conn = nil
				}
			}
		}
		if conn != nil {
			nonce++
			if err := conn.SetReadDeadline(time.Now().Add(r.opts.Timeout)); err == nil {
				sample, err := Exchange(conn, r.sync.local, nonce)
				if err != nil {
					conn.Close()
					conn = nil
				} else {
					r.sync.Step(sample)
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
