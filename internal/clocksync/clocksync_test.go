package clocksync

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func TestSampleOffsetDelaySymmetricPath(t *testing.T) {
	// True offset +10ms, symmetric 2ms one-way delay, 1ms server hold.
	// Client sends at local 100 → server receives at server 112.
	s := Sample{
		T1: 100 * time.Millisecond,
		T2: 112 * time.Millisecond,
		T3: 113 * time.Millisecond,
		T4: 105 * time.Millisecond,
	}
	if got := s.Offset(); got != 10*time.Millisecond {
		t.Errorf("Offset = %v, want 10ms", got)
	}
	if got := s.Delay(); got != 4*time.Millisecond {
		t.Errorf("Delay = %v, want 4ms", got)
	}
	if !s.Valid() {
		t.Error("valid sample rejected")
	}
}

func TestSampleValidRejectsNegativeDelay(t *testing.T) {
	s := Sample{T1: 10, T2: 0, T3: 0, T4: 5}
	if s.Valid() {
		t.Error("causally impossible sample accepted")
	}
}

// TestOffsetExactWithSymmetricDelays: for any true offset and any symmetric
// delay, a single sample recovers the offset exactly.
func TestOffsetExactWithSymmetricDelays(t *testing.T) {
	f := func(offsetMs int16, delayUs uint16, holdUs uint16) bool {
		offset := time.Duration(offsetMs) * time.Millisecond
		oneWay := time.Duration(delayUs) * time.Microsecond
		hold := time.Duration(holdUs) * time.Microsecond
		t1 := 500 * time.Millisecond
		s := Sample{
			T1: t1,
			T2: t1 + oneWay + offset,
			T3: t1 + oneWay + offset + hold,
			T4: t1 + 2*oneWay + hold,
		}
		return s.Offset() == offset && s.Delay() == 2*oneWay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOffsetErrorBoundedByHalfDelay: with asymmetric paths the estimate
// error is bounded by half the measured round-trip delay.
func TestOffsetErrorBoundedByHalfDelay(t *testing.T) {
	f := func(offsetMs int16, fwdUs, bwdUs uint16) bool {
		offset := time.Duration(offsetMs) * time.Millisecond
		fwd := time.Duration(fwdUs) * time.Microsecond
		bwd := time.Duration(bwdUs) * time.Microsecond
		t1 := time.Second
		s := Sample{
			T1: t1,
			T2: t1 + fwd + offset,
			T3: t1 + fwd + offset,
			T4: t1 + fwd + bwd,
		}
		err := s.Offset() - offset
		if err < 0 {
			err = -err
		}
		return err <= s.Delay()/2+time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFilterPicksMinimumDelay(t *testing.T) {
	f := NewFilter(4)
	mk := func(delay time.Duration) Sample {
		return Sample{T1: 0, T2: delay / 2, T3: delay / 2, T4: delay}
	}
	for _, d := range []time.Duration{9, 3, 7, 5} {
		if !f.Add(mk(d * time.Millisecond)) {
			t.Fatal("valid sample rejected")
		}
	}
	best, ok := f.Best()
	if !ok || best.Delay() != 3*time.Millisecond {
		t.Errorf("Best delay = %v, want 3ms", best.Delay())
	}
	// Window slides: push 4 more; the 3ms sample falls out.
	for _, d := range []time.Duration{8, 8, 8, 6} {
		f.Add(mk(d * time.Millisecond))
	}
	best, _ = f.Best()
	if best.Delay() != 6*time.Millisecond {
		t.Errorf("after slide Best delay = %v, want 6ms", best.Delay())
	}
	if f.Len() != 4 {
		t.Errorf("Len = %d, want 4", f.Len())
	}
}

func TestFilterEmptyAndInvalid(t *testing.T) {
	f := NewFilter(0)
	if _, ok := f.Best(); ok {
		t.Error("Best on empty filter")
	}
	if f.Add(Sample{T1: 10, T4: 5}) {
		t.Error("invalid sample accepted")
	}
}

func TestNewSynchronizerValidation(t *testing.T) {
	if _, err := NewSynchronizer(nil, 0.5); err == nil {
		t.Error("nil clock accepted")
	}
	clock := func() time.Duration { return 0 }
	if _, err := NewSynchronizer(clock, 1.5); err == nil {
		t.Error("gain > 1 accepted")
	}
	if _, err := NewSynchronizer(clock, -0.1); err == nil {
		t.Error("negative gain accepted")
	}
	s, err := NewSynchronizer(clock, 0)
	if err != nil || s == nil {
		t.Fatalf("default gain rejected: %v", err)
	}
}

// TestSynchronizerConvergesOnSkewedClock models the paper's PTPd setup:
// the client clock is offset from the server's by a fixed skew; exchanges
// have jittered symmetric delays. After a handful of steps the corrected
// clock must be within a tight bound of the server clock — the paper
// reports 0.05 ms over a LAN; with our jitter model we check 0.2 ms.
func TestSynchronizerConvergesOnSkewedClock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trueOffset := -7 * time.Millisecond // client behind server
	var virtual time.Duration           // server timebase
	local := func() time.Duration { return virtual - trueOffset }
	sync, err := NewSynchronizer(local, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		virtual += 50 * time.Millisecond
		oneWay := 200*time.Microsecond + time.Duration(rng.Intn(100))*time.Microsecond
		asym := time.Duration(rng.Intn(40)-20) * time.Microsecond
		t1 := local()
		t2 := virtual + oneWay + asym
		t3 := t2
		virtual += 2 * oneWay
		t4 := local()
		sync.Step(Sample{T1: t1, T2: t2, T3: t3, T4: t4})
	}
	if !sync.Synced() {
		t.Fatal("not synced after 32 exchanges")
	}
	errNow := sync.Now() - virtual
	if errNow < 0 {
		errNow = -errNow
	}
	if errNow > 200*time.Microsecond {
		t.Errorf("residual clock error %v > 0.2ms (offset applied %v, true %v)",
			errNow, sync.Offset(), trueOffset)
	}
	if sync.Steps() != 32 {
		t.Errorf("Steps = %d, want 32", sync.Steps())
	}
}

func TestSynchronizerFirstSampleSnaps(t *testing.T) {
	local := func() time.Duration { return 100 * time.Millisecond }
	sync, err := NewSynchronizer(local, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sync.Step(Sample{T1: 100 * time.Millisecond, T2: 160 * time.Millisecond,
		T3: 160 * time.Millisecond, T4: 100 * time.Millisecond})
	if got := sync.Offset(); got != 60*time.Millisecond {
		t.Errorf("first step offset = %v, want snap to 60ms", got)
	}
	if got := sync.Now(); got != 160*time.Millisecond {
		t.Errorf("Now = %v, want 160ms", got)
	}
}

func TestExchangeRespondOverPipe(t *testing.T) {
	clientNC, serverNC := net.Pipe()
	client, server := transport.NewConn(clientNC), transport.NewConn(serverNC)
	defer client.Close()
	defer server.Close()

	// Server clock runs 5ms ahead of the client's.
	start := time.Now()
	serverClock := func() time.Duration { return time.Since(start) + 5*time.Millisecond }
	clientClock := func() time.Duration { return time.Since(start) }

	done := make(chan error, 1)
	go func() {
		req, err := server.Recv()
		if err != nil {
			done <- err
			return
		}
		if req.Type != wire.TypeTimeReq {
			done <- nil
			return
		}
		done <- Respond(server, serverClock, req)
	}()

	sample, err := Exchange(client, clientClock, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !sample.Valid() {
		t.Fatalf("invalid sample %+v", sample)
	}
	off := sample.Offset()
	// net.Pipe delay is microseconds; the offset must be ≈5ms.
	if off < 4*time.Millisecond || off > 6*time.Millisecond {
		t.Errorf("offset = %v, want ≈5ms", off)
	}
}

func TestExchangeSkipsUnrelatedFrames(t *testing.T) {
	clientNC, serverNC := net.Pipe()
	client, server := transport.NewConn(clientNC), transport.NewConn(serverNC)
	defer client.Close()
	defer server.Close()
	clock := func() time.Duration { return time.Millisecond }

	go func() {
		req, err := server.Recv()
		if err != nil {
			return
		}
		// Noise first, then the real answer.
		server.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: 99})
		server.Send(&wire.Frame{Type: wire.TypeTimeResp, Nonce: 7, T1: req.T1, T2: 1, T3: 1})
		Respond(server, clock, req)
	}()
	sample, err := Exchange(client, clock, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sample.T2 != time.Millisecond {
		t.Errorf("picked wrong response: %+v", sample)
	}
}
