package clocksync

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// startTimeServer runs a responder with the given clock on a mem network.
func startTimeServer(t *testing.T, n transport.Network, addr string, clk Clock) {
	t.Helper()
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := transport.NewConn(nc)
			go func() {
				defer conn.Close()
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					if f.Type == wire.TypeTimeReq {
						if err := Respond(conn, clk, f); err != nil {
							return
						}
					}
				}
			}()
		}
	}()
}

func TestRunnerValidation(t *testing.T) {
	n := transport.NewMem()
	local := func() time.Duration { return 0 }
	tests := []struct {
		name string
		opts RunnerOptions
	}{
		{"nil network", RunnerOptions{ServerAddr: "a", Local: local}},
		{"empty addr", RunnerOptions{Network: n, Local: local}},
		{"nil clock", RunnerOptions{Network: n, ServerAddr: "a"}},
		{"negative interval", RunnerOptions{Network: n, ServerAddr: "a", Local: local, Interval: -time.Second}},
		{"bad gain", RunnerOptions{Network: n, ServerAddr: "a", Local: local, Gain: 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRunner(tc.opts); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}

func TestRunnerDisciplinesSkewedClock(t *testing.T) {
	n := transport.NewMem()
	start := time.Now()
	// Server runs 25ms ahead of the client's local clock.
	serverClock := func() time.Duration { return time.Since(start) + 25*time.Millisecond }
	localClock := func() time.Duration { return time.Since(start) }
	startTimeServer(t, n, "primary", serverClock)

	r, err := NewRunner(RunnerOptions{
		ServerAddr: "primary", Network: n, Local: localClock,
		Interval: 5 * time.Millisecond, Timeout: 100 * time.Millisecond, Gain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.Synchronizer().Steps() < 5 {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want canceled", err)
	}
	if !r.Synchronizer().Synced() {
		t.Fatal("never synced")
	}
	// The disciplined clock must track the server within a millisecond
	// (mem-pipe delays are tens of microseconds).
	diff := r.Clock()() - serverClock()
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Errorf("disciplined clock off by %v (offset estimate %v, want ≈25ms)",
			diff, r.Synchronizer().Offset())
	}
}

func TestRunnerSurvivesServerRestart(t *testing.T) {
	n := transport.NewMem()
	start := time.Now()
	clk := func() time.Duration { return time.Since(start) }

	// No server at first: the runner should keep retrying without error.
	r, err := NewRunner(RunnerOptions{
		ServerAddr: "primary", Network: n, Local: clk,
		Interval: 5 * time.Millisecond, Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()

	time.Sleep(30 * time.Millisecond)
	if r.Synchronizer().Synced() {
		t.Fatal("synced with no server")
	}
	startTimeServer(t, n, "primary", clk)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !r.Synchronizer().Synced() {
		time.Sleep(5 * time.Millisecond)
	}
	if !r.Synchronizer().Synced() {
		t.Fatal("never recovered after server came up")
	}
	cancel()
	<-done
}
