// Package clocksync synchronizes host clocks across the deployment.
//
// The paper's test-bed synchronizes local hosts via PTPd (error within
// 0.05 ms) and the cloud subscriber via chrony/NTP (error within
// milliseconds); FRAME's end-to-end latency measurements and deadline
// assignments depend on that common timebase (§VI-A). This package is the
// reproduction's equivalent substrate: an NTP-style four-timestamp
// offset/delay estimator, a minimum-delay sample filter (the same idea as
// NTP's clock filter and PTP's best-sample selection), and a proportional
// servo that slews a local clock onto the server's timebase.
//
// Offset convention: offset = server_time − client_time, so a synchronized
// reading is local() + offset.
package clocksync

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Clock reads a local monotonic clock. Both the simulator (virtual time)
// and the real stack (time.Since(start)) provide one.
type Clock func() time.Duration

// Sample is one request/response exchange: T1 client transmit, T2 server
// receive, T3 server transmit, T4 client receive — exactly NTP's timestamp
// quartet (RFC 5905 §8) and the PTP delay-request mechanism.
type Sample struct {
	T1, T2, T3, T4 time.Duration
}

// Offset estimates server−client clock offset assuming symmetric paths:
// ((T2−T1) + (T3−T4)) / 2.
func (s Sample) Offset() time.Duration {
	return ((s.T2 - s.T1) + (s.T3 - s.T4)) / 2
}

// Delay is the round-trip network delay excluding server processing:
// (T4−T1) − (T3−T2).
func (s Sample) Delay() time.Duration {
	return (s.T4 - s.T1) - (s.T3 - s.T2)
}

// Valid rejects causally impossible samples (negative delay).
func (s Sample) Valid() bool { return s.Delay() >= 0 && s.T4 >= s.T1 }

// Filter keeps the last window samples and selects the one with minimum
// delay: low-delay exchanges bound the offset error most tightly, since the
// asymmetry error of a sample is at most half its delay.
type Filter struct {
	window []Sample
	size   int
}

// DefaultFilterWindow is the clock-filter depth (NTP uses 8).
const DefaultFilterWindow = 8

// NewFilter returns a filter with the given window (0 means default).
func NewFilter(size int) *Filter {
	if size <= 0 {
		size = DefaultFilterWindow
	}
	return &Filter{size: size}
}

// Add inserts a sample, discarding invalid ones. It reports whether the
// sample was kept.
func (f *Filter) Add(s Sample) bool {
	if !s.Valid() {
		return false
	}
	if len(f.window) == f.size {
		copy(f.window, f.window[1:])
		f.window = f.window[:f.size-1]
	}
	f.window = append(f.window, s)
	return true
}

// Best returns the minimum-delay sample in the window.
func (f *Filter) Best() (Sample, bool) {
	if len(f.window) == 0 {
		return Sample{}, false
	}
	best := f.window[0]
	for _, s := range f.window[1:] {
		if s.Delay() < best.Delay() {
			best = s
		}
	}
	return best, true
}

// Len returns the number of retained samples.
func (f *Filter) Len() int { return len(f.window) }

// Synchronizer estimates and applies a clock offset for one upstream
// server. It is safe for concurrent use: measurement goroutines feed Step
// while readers call Now.
type Synchronizer struct {
	local Clock
	// gain is the servo's proportional constant in (0, 1]: each Step moves
	// the applied offset gain·(estimate − applied). 1 snaps immediately.
	gain float64

	mu      sync.Mutex
	filter  *Filter
	offset  time.Duration
	synced  bool
	stepped int
}

// NewSynchronizer returns a synchronizer over the local clock. gain in
// (0,1]; 0 picks the default 0.5 (halving convergence like PTPd's servo).
func NewSynchronizer(local Clock, gain float64) (*Synchronizer, error) {
	if local == nil {
		return nil, errors.New("clocksync: nil local clock")
	}
	if gain < 0 || gain > 1 {
		return nil, fmt.Errorf("clocksync: gain %v outside [0,1]", gain)
	}
	if gain == 0 {
		gain = 0.5
	}
	return &Synchronizer{local: local, gain: gain, filter: NewFilter(0)}, nil
}

// Step feeds one exchange sample and updates the applied offset. The first
// valid sample snaps the clock (like ntpd's initial step); later samples
// slew by the servo gain toward the filtered estimate.
func (s *Synchronizer) Step(sample Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.filter.Add(sample) {
		return
	}
	best, ok := s.filter.Best()
	if !ok {
		return
	}
	estimate := best.Offset()
	if !s.synced {
		s.offset = estimate
		s.synced = true
		s.stepped++
		return
	}
	delta := estimate - s.offset
	s.offset += time.Duration(float64(delta) * s.gain)
	s.stepped++
}

// Now returns the local clock corrected onto the server timebase.
func (s *Synchronizer) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local() + s.offset
}

// Offset returns the currently applied offset.
func (s *Synchronizer) Offset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offset
}

// Synced reports whether at least one valid sample has been applied.
func (s *Synchronizer) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced
}

// Steps returns how many valid samples have been applied.
func (s *Synchronizer) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepped
}

// Exchange performs one timestamp exchange over a framed connection: it
// sends TimeReq with T1, waits for the matching TimeResp, and returns the
// completed sample. The caller owns read access to the connection for the
// duration of the call.
func Exchange(conn *transport.Conn, local Clock, nonce uint64) (Sample, error) {
	t1 := local()
	if err := conn.Send(&wire.Frame{Type: wire.TypeTimeReq, Nonce: nonce, T1: t1}); err != nil {
		return Sample{}, fmt.Errorf("clocksync: send: %w", err)
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			return Sample{}, fmt.Errorf("clocksync: recv: %w", err)
		}
		if f.Type != wire.TypeTimeResp || f.Nonce != nonce {
			continue // unrelated traffic on a shared link
		}
		return Sample{T1: f.T1, T2: f.T2, T3: f.T3, T4: local()}, nil
	}
}

// Respond answers one TimeReq frame with the server-side timestamps. The
// broker runtime calls this inline from its read loop, so T2≈T3 (server
// processing is sub-microsecond).
func Respond(conn *transport.Conn, local Clock, req *wire.Frame) error {
	t2 := local()
	resp := &wire.Frame{
		Type:  wire.TypeTimeResp,
		Nonce: req.Nonce,
		T1:    req.T1,
		T2:    t2,
		T3:    local(),
	}
	if err := conn.Send(resp); err != nil {
		return fmt.Errorf("clocksync: respond: %w", err)
	}
	return nil
}
